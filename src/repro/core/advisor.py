"""Protocol selection flowchart (paper Figure 14) and Table 4 as code.

:func:`recommend` walks the paper's decision flowchart over a structured
description of a deployment and returns the protocol family the paper
suggests, with the paper's rationale attached.
"""

from __future__ import annotations

from dataclasses import dataclass

# Table 4: which distilled parameter each protocol explores.
PARAMETERS_EXPLORED: dict[str, tuple[str, ...]] = {
    "L (leaders)": ("EPaxos", "WPaxos"),
    "c (conflicts)": ("Generalized Paxos", "EPaxos"),
    "Q (quorum)": ("FPaxos", "WPaxos"),
    "l (locality)": ("VPaxos", "WPaxos", "WanKeeper"),
}


@dataclass(frozen=True)
class DeploymentProfile:
    """Answers to the flowchart's questions, in the order asked."""

    needs_consensus: bool = True
    wan: bool = False
    workload_has_locality: bool = False
    read_heavy: bool = False  # more reads than writes
    locality_is_dynamic: bool = False
    datacenter_failure_is_concern: bool = False


@dataclass(frozen=True)
class Recommendation:
    """One leaf of the flowchart."""

    category: str
    protocols: tuple[str, ...]
    rationale: str


NO_CONSENSUS = Recommendation(
    category="no-consensus",
    protocols=("Atomic Storage", "Chain Replication", "Eventually-consistent replication"),
    rationale=(
        "Consensus protocols implement SMR for critical coordination tasks; "
        "consensus is not required to provide read/write linearizability to clients."
    ),
)

LAN_SINGLE_LEADER = Recommendation(
    category="single-leader",
    protocols=("Multi-Paxos", "Raft", "Zab"),
    rationale=(
        "Deployment with a small number of nodes in LAN preserves decent "
        "performance even with single-leader protocols, while benefiting "
        "from a simple implementation."
    ),
)

LEADERLESS = Recommendation(
    category="leaderless",
    protocols=("Generalized Paxos", "EPaxos"),
    rationale=(
        "More frequent read operations mean fewer interfering commands, "
        "which benefits the leaderless approach."
    ),
)

STATIC_SHARDING = Recommendation(
    category="sharded",
    protocols=("Paxos Groups",),
    rationale=(
        "Static locality means a sharding technique works in the "
        "best-case scenario."
    ),
)

HIERARCHICAL = Recommendation(
    category="hierarchical",
    protocols=("Vertical Paxos", "WanKeeper"),
    rationale=(
        "The group of replicas can be deployed in one region and managed "
        "by a master or hierarchical architecture."
    ),
)

ADAPTIVE_MULTILEADER = Recommendation(
    category="adaptive-multi-leader",
    protocols=("WPaxos", "Vertical Paxos with cross-region Paxos groups"),
    rationale=(
        "A multi-leader protocol that dynamically adapts to locality and "
        "tolerates datacenter failures is the best fit."
    ),
)


def recommend(profile: DeploymentProfile) -> Recommendation:
    """Walk Figure 14's flowchart and return the recommended family."""
    if not profile.needs_consensus:
        return NO_CONSENSUS
    if not profile.wan:
        return LAN_SINGLE_LEADER
    if not profile.workload_has_locality:
        if profile.read_heavy:
            return LEADERLESS
        return LAN_SINGLE_LEADER
    if not profile.locality_is_dynamic:
        return STATIC_SHARDING
    if profile.datacenter_failure_is_concern:
        return ADAPTIVE_MULTILEADER
    return HIERARCHICAL


def all_paths() -> list[tuple[DeploymentProfile, Recommendation]]:
    """Every distinct flowchart path, for documentation and testing."""
    profiles = [
        DeploymentProfile(needs_consensus=False),
        DeploymentProfile(wan=False),
        DeploymentProfile(wan=True, workload_has_locality=False, read_heavy=True),
        DeploymentProfile(wan=True, workload_has_locality=False, read_heavy=False),
        DeploymentProfile(wan=True, workload_has_locality=True, locality_is_dynamic=False),
        DeploymentProfile(
            wan=True,
            workload_has_locality=True,
            locality_is_dynamic=True,
            datacenter_failure_is_concern=True,
        ),
        DeploymentProfile(
            wan=True,
            workload_has_locality=True,
            locality_is_dynamic=True,
            datacenter_failure_is_concern=False,
        ),
    ]
    return [(profile, recommend(profile)) for profile in profiles]
