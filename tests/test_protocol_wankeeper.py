"""Integration tests for WanKeeper."""

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import Command
from repro.protocols.wankeeper import MASTER, WanKeeper

from tests.conftest import assert_correct, run_protocol

WAN = ("VA", "OH", "CA")


def wan_cfg(seed=1, **params):
    return Config.wan(WAN, 3, seed=seed, **params)


def test_master_is_second_zone_by_default():
    dep = Deployment(wan_cfg()).start(WanKeeper)
    master = dep.replicas[NodeID(2, 1)]
    assert master.is_master
    assert not dep.replicas[NodeID(1, 1)].is_master
    assert dep.config.zone_site(2) == "OH"


def test_master_executes_first_access(lan9):
    dep = Deployment(Config.lan(3, 3, seed=1)).start(WanKeeper)
    client = dep.new_client()
    seen = []
    client.invoke(Command.put("k", "v"), target=NodeID(1, 1), on_done=lambda r, l: seen.append(r.value))
    dep.run_for(0.1)
    assert seen == ["v"]
    master = dep.replicas[NodeID(2, 1)]
    assert master._token_table["k"].holder == MASTER
    assert master.store.read("k") == "v"


def test_token_granted_after_consecutive_zone_accesses():
    dep = Deployment(wan_cfg()).start(WanKeeper)
    client = dep.new_client(site="VA")
    latencies = []
    for i in range(6):
        client.invoke(Command.put("k", i), target=NodeID(1, 1), on_done=lambda r, l: latencies.append(l * 1e3))
        dep.run_for(0.3)
    leader = dep.replicas[NodeID(1, 1)]
    assert "k" in leader.tokens  # granted after 3 consecutive VA accesses
    # Early accesses pay the WAN trip to the master; later ones are local.
    assert latencies[0] > 10
    assert latencies[-1] < 5
    assert_correct(dep)


def test_contention_retracts_token_to_master():
    dep = Deployment(wan_cfg()).start(WanKeeper)
    va = dep.new_client(site="VA")
    ca = dep.new_client(site="CA")
    for i in range(4):  # grant to VA
        va.invoke(Command.put("k", f"va{i}"), target=NodeID(1, 1))
        dep.run_for(0.3)
    assert "k" in dep.replicas[NodeID(1, 1)].tokens
    ca.invoke(Command.put("k", "ca0"), target=NodeID(3, 1))
    dep.run_for(0.5)
    master = dep.replicas[NodeID(2, 1)]
    assert master._token_table["k"].holder == MASTER
    assert "k" not in dep.replicas[NodeID(1, 1)].tokens
    # The contested write still executed, with full history spliced in.
    assert master.store.history("k")[-1] == "ca0"
    assert master.store.history("k")[0] == "va0"
    assert_correct(dep)


def test_master_region_gets_local_latency_under_conflict():
    """Figure 11b: the Ohio (master) region enjoys steady low latency on
    the conflict object."""
    dep = Deployment(wan_cfg(seed=2)).start(WanKeeper)
    spec = {
        site: WorkloadSpec(keys=50, min_key=1000 * i, conflict_ratio=0.5, conflict_key=777)
        for i, site in enumerate(WAN)
    }
    bench = ClosedLoopBenchmark(dep, spec, concurrency=6)
    result = bench.run(duration=1.5, warmup=0.5, settle=0.3)
    assert result.per_site["OH"].mean < 3
    assert result.per_site["VA"].mean > result.per_site["OH"].mean
    assert result.per_site["CA"].mean > result.per_site["VA"].mean  # CA-OH 52 > VA-OH 11
    assert_correct(dep)


def test_locality_workload_settles_tokens_to_regions():
    dep = Deployment(wan_cfg(seed=3)).start(WanKeeper)
    spec = {
        "VA": WorkloadSpec(keys=60, distribution="normal", mu=10, sigma=4),
        "OH": WorkloadSpec(keys=60, distribution="normal", mu=30, sigma=4),
        "CA": WorkloadSpec(keys=60, distribution="normal", mu=50, sigma=4),
    }
    bench = ClosedLoopBenchmark(dep, spec, concurrency=6)
    result = bench.run(duration=2.5, warmup=1.5, settle=0.3)
    # After the warmup, every region should be mostly local; the master
    # region is best (tokens it keeps never pay WAN at all).
    assert result.per_site["OH"].p50 < 2
    assert result.per_site["VA"].p50 < 5
    assert result.per_site["CA"].p50 < 5
    va_leader = dep.replicas[NodeID(1, 1)]
    assert len(va_leader.tokens) > 5
    assert_correct(dep)


def test_lan_throughput_beats_wpaxos():
    """Figure 9: hierarchical WanKeeper saturates above WPaxos."""
    from repro.protocols.wpaxos import WPaxos

    _dw, wk = run_protocol(
        WanKeeper, Config.lan(3, 3, seed=4), WorkloadSpec(keys=1000), concurrency=128, duration=0.3
    )
    _dp, wp = run_protocol(
        WPaxos, Config.lan(3, 3, seed=4), WorkloadSpec(keys=1000), concurrency=128, duration=0.3
    )
    assert wk.throughput > wp.throughput


def test_correct_under_mixed_load(lan9):
    dep, res = run_protocol(
        WanKeeper,
        Config.lan(3, 3, seed=5),
        WorkloadSpec(keys=30, conflict_ratio=0.3),
        concurrency=8,
        duration=0.4,
    )
    assert res.completed > 200
    dep.run_for(0.3)
    assert_correct(dep)
