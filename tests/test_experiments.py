"""Smoke tests for the experiment registry and the cheap drivers.

The expensive simulation drivers are exercised by the benchmark harness
(``pytest benchmarks/ --benchmark-only``); here we verify the registry,
the result plumbing, and the analytic drivers end to end.
"""

import os

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.common import ExperimentResult, locality_spec, region_spec


EXPECTED_IDS = {
    "fig03",
    "table1",
    "fig04",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "table4",
    "fig14",
    "formulas",
    "extra_scalability",
    "extra_availability",
    "extra_relaxed",
    "extra_dynamic",
    "extra_mencius",
    "bench_batching",
    "bench_faults",
    "bench_grayfail",
    "bench_overload",
    "bench_reads",
    "bench_sharding",
    "bench_simspeed",
}


def test_registry_covers_every_paper_artifact():
    assert set(EXPERIMENTS) == EXPECTED_IDS


def test_result_text_and_csv(tmp_path):
    result = ExperimentResult(
        experiment="demo",
        title="demo table",
        headers=["a", "b"],
        rows=[[1, 2.5], ["x", 3]],
        notes=["hello"],
    )
    text = result.to_text()
    assert "demo table" in text and "hello" in text and "2.500" in text
    path = result.write_csv(str(tmp_path))
    assert os.path.exists(path)
    with open(path) as f:
        assert f.readline().strip() == "a,b"


@pytest.mark.parametrize("name", ["table1", "fig08", "fig10", "fig12", "table4", "fig14"])
def test_analytic_drivers_run_fast(name):
    result = EXPERIMENTS[name](True)
    assert result.experiment == name
    assert result.rows


def test_fig03_calibration():
    result = EXPERIMENTS["fig03"](True)
    note = result.notes[0]
    mu = float(note.split("mu=")[1].split(" ")[0])
    assert abs(mu - 0.4271) < 0.02


def test_region_spec_isolates_key_ranges():
    a = region_spec(0, keys_per_region=10)
    b = region_spec(1, keys_per_region=10)
    assert a.min_key + a.keys <= b.min_key
    assert a.conflict_key == b.conflict_key  # the shared hot object


def test_locality_spec_spreads_means():
    specs = [locality_spec(i, keys_total=180) for i in range(3)]
    mus = [s.mu for s in specs]
    assert mus == sorted(mus)
    assert mus[1] - mus[0] == pytest.approx(60)
    assert all(s.distribution == "normal" for s in specs)


def test_bench_batching_regression_gate(tmp_path):
    """The CI gate reads the JSON the driver writes and passes/fails on
    batched-vs-unbatched knees (driver itself is exercised in the slow
    benchmark harness; here we validate the gate's verdict logic)."""
    import json

    from repro.experiments.bench_batching import check_no_regression

    path = tmp_path / "BENCH_batching.json"
    good = {
        "protocols": {
            "paxos": {"knee_unbatched": 8000.0, "knee_batched": 28000.0, "speedup": 3.5}
        }
    }
    path.write_text(json.dumps(good))
    check_no_regression(str(path))  # no raise

    bad = {
        "protocols": {
            "paxos": {"knee_unbatched": 8000.0, "knee_batched": 7000.0, "speedup": 0.9}
        }
    }
    path.write_text(json.dumps(bad))
    with pytest.raises(SystemExit, match="batching regression"):
        check_no_regression(str(path))
    with pytest.raises(SystemExit, match="not found"):
        check_no_regression(str(tmp_path / "missing.json"))


def test_bench_faults_recovery_gate(tmp_path):
    """The fault-recovery gate fails on unrecovered scenarios or low
    availability (the driver itself runs in the chaos CI job)."""
    import json

    from repro.experiments.bench_faults import check_recovered

    path = tmp_path / "BENCH_faults.json"
    good = {
        "scenarios": {
            "paxos:reboot:durable": {"mttr_s": 0.25, "availability": 0.9},
        }
    }
    path.write_text(json.dumps(good))
    check_recovered(str(path))  # no raise

    for bad_metrics in (
        {"mttr_s": None, "availability": 0.9},
        {"mttr_s": 0.25, "availability": 0.3},
    ):
        path.write_text(json.dumps({"scenarios": {"paxos:wipe:memory": bad_metrics}}))
        with pytest.raises(SystemExit, match="fault-recovery regression"):
            check_recovered(str(path))
    with pytest.raises(SystemExit, match="not found"):
        check_recovered(str(tmp_path / "missing.json"))


def test_bench_grayfail_regression_gate(tmp_path):
    """The gray-failure gate fails on false-positive handoffs, a missing
    collapse, a failed recovery, or a safety violation (the driver itself
    runs in the bench-grayfail CI job)."""
    import json

    from repro.experiments.bench_grayfail import check_no_regression

    path = tmp_path / "BENCH_grayfail.json"
    cell = {"linearizable": True, "consensus_ok": True, "handoffs": 0}
    good = {
        "gates": {
            "undetected_ceiling": 0.40,
            "recovered_floor": 0.85,
            "max_clean_handoffs": 0,
            "model_band": 0.25,
        },
        "protocols": {
            "multipaxos": {
                "knee": 1400.0,
                "clean": dict(cell),
                "undetected": {**cell, "over_knee": 0.33, "model_error": 0.04},
                "detected": {**cell, "over_knee": 0.95, "handoffs": 1},
            }
        },
    }
    path.write_text(json.dumps(good))
    check_no_regression(str(path))  # no raise

    matrix = good["protocols"]["multipaxos"]
    for patch, match in (
        ({"clean": {**cell, "handoffs": 2}}, "healthy cluster"),
        ({"undetected": {**matrix["undetected"], "over_knee": 0.8}}, "not reproduced"),
        ({"undetected": {**matrix["undetected"], "model_error": 0.5}}, "capacity model"),
        ({"detected": {**matrix["detected"], "over_knee": 0.5}}, "recovered only"),
        ({"detected": {**matrix["detected"], "handoffs": 0}}, "no planned handoff"),
        ({"detected": {**matrix["detected"], "linearizable": False}}, "safety violation"),
    ):
        bad = {**good, "protocols": {"multipaxos": {**matrix, **patch}}}
        path.write_text(json.dumps(bad))
        with pytest.raises(SystemExit, match=match):
            check_no_regression(str(path))
    path.write_text(json.dumps({**good, "protocols": {}}))
    with pytest.raises(SystemExit, match="multipaxos matrix missing"):
        check_no_regression(str(path))
    with pytest.raises(SystemExit, match="not found"):
        check_no_regression(str(tmp_path / "missing.json"))


def test_bench_simspeed_regression_gate(tmp_path):
    """The simulator-speed gate fails on slow events/sec, diverging
    parallel results, or (multi-core only) slower-than-serial fan-out
    (the driver itself runs in the bench-simspeed CI job)."""
    import json

    from repro.experiments.bench_simspeed import check_no_regression

    path = tmp_path / "BENCH_simspeed.json"
    good = {
        "cpu_count": 4,
        "saturation": {"events_per_sec": 120000.0},
        "parallel": {
            "results_identical": True,
            "serial_wall_s": 8.0,
            "parallel_wall_s": 2.5,
        },
    }
    path.write_text(json.dumps(good))
    check_no_regression(str(path))  # no raise

    for bad in (
        {**good, "saturation": {"events_per_sec": 30000.0}},
        {**good, "parallel": {**good["parallel"], "results_identical": False}},
        {**good, "parallel": {**good["parallel"], "parallel_wall_s": 9.5}},
    ):
        path.write_text(json.dumps(bad))
        with pytest.raises(SystemExit, match="simspeed regression"):
            check_no_regression(str(path))
    # On a single-CPU machine fan-out overhead is expected and not gated.
    single = {**good, "cpu_count": 1, "parallel": {**good["parallel"], "parallel_wall_s": 9.5}}
    path.write_text(json.dumps(single))
    check_no_regression(str(path))  # no raise
    with pytest.raises(SystemExit, match="not found"):
        check_no_regression(str(tmp_path / "missing.json"))


def test_cli_main(capsys):
    from repro.experiments.__main__ import main

    assert main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "Parameters explored" in out


def test_cli_rejects_bad_jobs():
    from repro.experiments.__main__ import main

    with pytest.raises(SystemExit):
        main(["table4", "--jobs", "0"])
