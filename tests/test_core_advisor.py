"""Tests for the Figure-14 flowchart and Table 4."""

from repro.core.advisor import (
    PARAMETERS_EXPLORED,
    DeploymentProfile,
    all_paths,
    recommend,
)


def test_no_consensus_needed():
    rec = recommend(DeploymentProfile(needs_consensus=False))
    assert rec.category == "no-consensus"
    assert "Chain Replication" in rec.protocols


def test_lan_gets_single_leader():
    rec = recommend(DeploymentProfile(wan=False))
    assert rec.category == "single-leader"
    assert set(rec.protocols) == {"Multi-Paxos", "Raft", "Zab"}


def test_wan_read_heavy_no_locality_gets_leaderless():
    rec = recommend(
        DeploymentProfile(wan=True, workload_has_locality=False, read_heavy=True)
    )
    assert "EPaxos" in rec.protocols
    assert "Generalized Paxos" in rec.protocols


def test_wan_write_heavy_no_locality_gets_single_leader():
    rec = recommend(
        DeploymentProfile(wan=True, workload_has_locality=False, read_heavy=False)
    )
    assert rec.category == "single-leader"


def test_static_locality_gets_sharding():
    rec = recommend(
        DeploymentProfile(wan=True, workload_has_locality=True, locality_is_dynamic=False)
    )
    assert rec.protocols == ("Paxos Groups",)


def test_dynamic_locality_with_dc_failure_concern_gets_wpaxos():
    rec = recommend(
        DeploymentProfile(
            wan=True,
            workload_has_locality=True,
            locality_is_dynamic=True,
            datacenter_failure_is_concern=True,
        )
    )
    assert rec.category == "adaptive-multi-leader"
    assert "WPaxos" in rec.protocols


def test_dynamic_locality_without_dc_failure_concern_gets_hierarchical():
    rec = recommend(
        DeploymentProfile(
            wan=True,
            workload_has_locality=True,
            locality_is_dynamic=True,
            datacenter_failure_is_concern=False,
        )
    )
    assert set(rec.protocols) == {"Vertical Paxos", "WanKeeper"}


def test_all_paths_covers_every_leaf():
    paths = all_paths()
    categories = {rec.category for _profile, rec in paths}
    assert categories == {
        "no-consensus",
        "single-leader",
        "leaderless",
        "sharded",
        "adaptive-multi-leader",
        "hierarchical",
    }


def test_every_recommendation_has_rationale():
    for _profile, rec in all_paths():
        assert rec.rationale
        assert rec.protocols


def test_table4_parameters():
    """Table 4 verbatim: which protocols explore which parameter."""
    assert PARAMETERS_EXPLORED["L (leaders)"] == ("EPaxos", "WPaxos")
    assert PARAMETERS_EXPLORED["c (conflicts)"] == ("Generalized Paxos", "EPaxos")
    assert PARAMETERS_EXPLORED["Q (quorum)"] == ("FPaxos", "WPaxos")
    assert PARAMETERS_EXPLORED["l (locality)"] == ("VPaxos", "WPaxos", "WanKeeper")


def test_wpaxos_explores_most_parameters():
    count = sum(1 for protos in PARAMETERS_EXPLORED.values() if "WPaxos" in protos)
    assert count == 3
