"""Tests for the distilled latency formula (Equation 7)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.latency import (
    FormulaInputs,
    epaxos_inputs,
    expected_latency,
    single_leader_inputs,
)
from repro.errors import ModelError

probability = st.floats(min_value=0.0, max_value=1.0)
delay = st.floats(min_value=0.0, max_value=500.0)


class TestEquation7:
    def test_fully_local_pays_only_quorum(self):
        assert expected_latency(0.0, 1.0, 100.0, 5.0) == pytest.approx(5.0)

    def test_fully_remote_pays_leader_and_quorum(self):
        assert expected_latency(0.0, 0.0, 100.0, 5.0) == pytest.approx(105.0)

    def test_conflict_doubles_at_c1(self):
        base = expected_latency(0.0, 0.5, 100.0, 5.0)
        assert expected_latency(1.0, 0.5, 100.0, 5.0) == pytest.approx(2 * base)

    def test_worked_example(self):
        # (1+0.2) * ((1-0.7)*(80+10) + 0.7*10) = 1.2 * (27 + 7) = 40.8
        assert expected_latency(0.2, 0.7, 80.0, 10.0) == pytest.approx(40.8)

    @given(probability, probability, delay, delay)
    def test_nonnegative(self, c, loc, dl, dq):
        assert expected_latency(c, loc, dl, dq) >= 0.0

    @given(probability, delay, delay)
    def test_locality_never_hurts(self, c, dl, dq):
        """More locality cannot increase latency (DL >= 0)."""
        lo = expected_latency(c, 0.3, dl, dq)
        hi = expected_latency(c, 0.8, dl, dq)
        assert hi <= lo + 1e-9

    @given(probability, delay, delay)
    def test_conflict_never_helps(self, loc, dl, dq):
        assert expected_latency(0.9, loc, dl, dq) >= expected_latency(0.1, loc, dl, dq)

    def test_validation(self):
        with pytest.raises(ModelError):
            expected_latency(-0.1, 0.5, 1, 1)
        with pytest.raises(ModelError):
            expected_latency(0.5, 1.5, 1, 1)
        with pytest.raises(ModelError):
            expected_latency(0.5, 0.5, -1, 1)


class TestFormulaInputs:
    def test_epaxos_inputs_per_paper(self):
        """Section 6.2: for EPaxos l = 1 and c is workload-specific."""
        inputs = epaxos_inputs(9, conflict=0.3, d_quorum=12.0)
        assert inputs.leaders == 9
        assert inputs.locality == 1.0
        assert inputs.quorum == 5
        assert inputs.latency() == pytest.approx(1.3 * 12.0)

    def test_single_leader_inputs_per_paper(self):
        inputs = single_leader_inputs(9, locality=0.4, d_leader=50.0, d_quorum=10.0)
        assert inputs.leaders == 1
        assert inputs.conflict == 0.0
        assert inputs.latency() == pytest.approx(0.6 * 60.0 + 0.4 * 10.0)

    def test_load_and_capacity_route_to_eq3(self):
        inputs = FormulaInputs(3, 3, 0.0, 1.0, 0.0, 1.0)
        assert inputs.load() == pytest.approx(4.0 / 3.0)
        assert inputs.capacity() == pytest.approx(3.0 / 4.0)
