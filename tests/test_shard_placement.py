"""Placement maps and the ShardSpec schema (repro.shard.placement)."""

import pytest

from repro.errors import PlacementError, UnknownShardError
from repro.shard.placement import (
    HashPlacement,
    OwnershipPlacement,
    RangePlacement,
    ShardSpec,
    lock_key,
    routing_key,
    stable_bucket,
)


class TestShardSpecValidation:
    def test_defaults_are_single_shard_hash(self):
        spec = ShardSpec()
        assert spec.count == 1 and spec.placement == "hash"

    @pytest.mark.parametrize("count", [0, -1, 1.5, True, "4"])
    def test_bad_count_rejected(self, count):
        with pytest.raises(PlacementError, match="count"):
            ShardSpec(count=count)

    def test_unknown_placement_names_valid_ones(self):
        with pytest.raises(PlacementError, match="hash"):
            ShardSpec(placement="consistent")

    def test_fewer_buckets_than_shards_rejected_with_fix(self):
        with pytest.raises(PlacementError, match="raise buckets to >= 8"):
            ShardSpec(count=8, buckets=4)

    def test_range_placement_requires_ranges(self):
        with pytest.raises(PlacementError, match="ranges"):
            ShardSpec(count=2, placement="range")

    def test_ranges_must_cover_the_line(self):
        with pytest.raises(PlacementError, match="unbounded below"):
            ShardSpec(count=2, placement="range", ranges=((0, 10, 0), (10, None, 1)))
        with pytest.raises(PlacementError, match="unbounded above"):
            ShardSpec(count=2, placement="range", ranges=((None, 10, 0), (10, 20, 1)))

    def test_ranges_may_not_gap_or_overlap(self):
        with pytest.raises(PlacementError, match="meet exactly"):
            ShardSpec(
                count=2, placement="range", ranges=((None, 10, 0), (11, None, 1))
            )

    def test_range_naming_missing_shard_is_actionable(self):
        with pytest.raises(UnknownShardError, match="only shards 0..1"):
            ShardSpec(count=2, placement="range", ranges=((None, 0, 0), (0, None, 7)))

    def test_ranges_only_for_range_placement(self):
        with pytest.raises(PlacementError, match="placement='range'"):
            ShardSpec(count=2, ranges=((None, None, 0),))

    def test_assignments_only_for_ownership(self):
        with pytest.raises(PlacementError, match="ownership"):
            ShardSpec(count=2, assignments=(("hot", 1),))

    def test_roundtrip_through_dict(self):
        spec = ShardSpec(
            count=3, placement="ownership", buckets=16, assignments=(("hot", 2),)
        )
        assert ShardSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(PlacementError, match="unknown shards key"):
            ShardSpec.from_dict({"count": 2, "shard_count": 2})


class TestLockKeyRouting:
    def test_lock_key_routes_with_its_data_key(self):
        assert routing_key(lock_key("user:7")) == "user:7"
        placement = ShardSpec(count=4, buckets=16).build()
        for key in ["a", "b", ("t", 1), 42]:
            assert placement.shard_of(lock_key(key)) == placement.shard_of(key)

    def test_stable_bucket_is_process_independent(self):
        # CRC of the repr, not hash(): fixed values pin the contract.
        assert stable_bucket("k1", 64) == stable_bucket("k1", 64)
        assert 0 <= stable_bucket(("compound", 3), 8) < 8


class TestHashPlacement:
    def test_buckets_spread_round_robin(self):
        placement = ShardSpec(count=4, buckets=8).build()
        assert isinstance(placement, HashPlacement)
        assert [placement.shard_of_bucket(b) for b in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_move_bucket_rehomes_every_key_in_it(self):
        placement = ShardSpec(count=2, buckets=4).build()
        keys = [f"k{i}" for i in range(50)]
        bucket = placement.bucket_of("k0")
        src = placement.shard_of("k0")
        placement.move_bucket(bucket, 1 - src)
        for key in keys:
            expected = 1 - src if placement.bucket_of(key) == bucket else None
            if expected is not None:
                assert placement.shard_of(key) == expected

    def test_move_bucket_bounds_checked(self):
        placement = ShardSpec(count=2, buckets=4).build()
        with pytest.raises(PlacementError, match="ring has 4 buckets"):
            placement.move_bucket(9, 0)
        with pytest.raises(UnknownShardError, match="shards.count = 2"):
            placement.move_bucket(0, 5)


class TestRangePlacement:
    def test_lookup_honors_half_open_ranges(self):
        placement = ShardSpec(
            count=3,
            placement="range",
            ranges=((None, 0, 0), (0, 100, 1), (100, None, 2)),
        ).build()
        assert isinstance(placement, RangePlacement)
        assert placement.shard_of(-5) == 0
        assert placement.shard_of(0) == 1
        assert placement.shard_of(99) == 1
        assert placement.shard_of(100) == 2

    def test_non_integer_key_is_an_error(self):
        placement = ShardSpec(count=1, placement="range", ranges=((None, None, 0),)).build()
        with pytest.raises(UnknownShardError, match="integer keys"):
            placement.shard_of("name")

    def test_no_runtime_rebalance(self):
        placement = ShardSpec(count=1, placement="range", ranges=((None, None, 0),)).build()
        with pytest.raises(PlacementError, match="static"):
            placement.move_bucket(0, 0)


class TestOwnershipPlacement:
    def test_assignment_overrides_hash_and_move_key_rehomes(self):
        spec = ShardSpec(
            count=2, placement="ownership", buckets=8, assignments=(("hot", 1),)
        )
        placement = spec.build()
        assert isinstance(placement, OwnershipPlacement)
        assert placement.shard_of("hot") == 1
        assert placement.shard_of(lock_key("hot")) == 1
        placement.move_key("hot", 0)
        assert placement.shard_of("hot") == 0
        with pytest.raises(UnknownShardError):
            placement.move_key("hot", 3)
