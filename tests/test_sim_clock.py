"""Unit tests for the virtual clock / event loop."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.clock import EventLoop


def test_starts_at_zero():
    assert EventLoop().now == 0.0


def test_call_at_fires_in_time_order():
    loop = EventLoop()
    fired = []
    loop.call_at(2.0, fired.append, "b")
    loop.call_at(1.0, fired.append, "a")
    loop.call_at(3.0, fired.append, "c")
    loop.run()
    assert fired == ["a", "b", "c"]


def test_same_time_fires_in_scheduling_order():
    loop = EventLoop()
    fired = []
    for tag in range(10):
        loop.call_at(1.0, fired.append, tag)
    loop.run()
    assert fired == list(range(10))


def test_call_after_is_relative():
    loop = EventLoop()
    seen = []
    loop.call_after(1.0, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [1.0]


def test_nested_scheduling():
    loop = EventLoop()
    seen = []

    def outer():
        seen.append(("outer", loop.now))
        loop.call_after(0.5, inner)

    def inner():
        seen.append(("inner", loop.now))

    loop.call_at(1.0, outer)
    loop.run()
    assert seen == [("outer", 1.0), ("inner", 1.5)]


def test_scheduling_in_past_raises():
    loop = EventLoop()
    loop.call_at(1.0, lambda: None)
    loop.run()
    with pytest.raises(SimulationError):
        loop.call_at(0.5, lambda: None)


def test_negative_delay_raises():
    with pytest.raises(SimulationError):
        EventLoop().call_after(-0.1, lambda: None)


def test_run_until_stops_at_deadline():
    loop = EventLoop()
    fired = []
    loop.call_at(1.0, fired.append, 1)
    loop.call_at(5.0, fired.append, 5)
    loop.run_until(2.0)
    assert fired == [1]
    assert loop.now == 2.0
    loop.run_until(6.0)
    assert fired == [1, 5]


def test_run_until_advances_clock_even_with_empty_heap():
    loop = EventLoop()
    loop.run_until(7.5)
    assert loop.now == 7.5


def test_cancel_prevents_firing():
    loop = EventLoop()
    fired = []
    handle = loop.call_at(1.0, fired.append, "x")
    handle.cancel()
    loop.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_twice_is_noop():
    loop = EventLoop()
    handle = loop.call_at(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    loop.run()


def test_stop_interrupts_run():
    loop = EventLoop()
    fired = []
    loop.call_at(1.0, fired.append, 1)
    loop.call_at(2.0, loop.stop)
    loop.call_at(3.0, fired.append, 3)
    loop.run()
    assert fired == [1]
    loop.run()
    assert fired == [1, 3]


def test_events_fired_counter():
    loop = EventLoop()
    for i in range(5):
        loop.call_at(float(i), lambda: None)
    loop.run()
    assert loop.events_fired == 5


def test_max_events_bound():
    loop = EventLoop()
    fired = []
    for i in range(10):
        loop.call_at(float(i), fired.append, i)
    loop.run(max_events=3)
    assert fired == [0, 1, 2]


def test_handle_reports_time():
    loop = EventLoop()
    handle = loop.call_at(4.2, lambda: None)
    assert handle.time == 4.2


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
def test_events_always_fire_in_nondecreasing_time_order(times):
    loop = EventLoop()
    seen = []
    for t in times:
        loop.call_at(t, lambda: seen.append(loop.now))
    loop.run()
    assert seen == sorted(seen)
    assert len(seen) == len(times)


class TestCancelledEventCompaction:
    """The heap must not leak cancelled entries (clients cancel a retry
    timer on nearly every reply, so an uncompacted heap grows with
    *issued* requests instead of *outstanding* ones)."""

    def test_live_pending_excludes_cancelled(self):
        loop = EventLoop()
        handles = [loop.call_at(float(i + 1), lambda: None) for i in range(10)]
        for handle in handles[:4]:
            handle.cancel()
        assert loop.pending() == 10
        assert loop.live_pending() == 6

    def test_mass_cancellation_compacts_the_heap(self):
        from repro.sim.clock import _COMPACT_MIN

        loop = EventLoop()
        keep = loop.call_at(1e9, lambda: None)
        handles = [loop.call_at(float(i + 1), lambda: None) for i in range(4 * _COMPACT_MIN)]
        for handle in handles:
            handle.cancel()
        assert loop.compactions >= 1
        # The heap physically shrank: below the compaction threshold, far
        # from the 4 * _COMPACT_MIN entries cancelled.
        assert loop.live_pending() == 1
        assert loop.pending() <= _COMPACT_MIN
        assert not keep.cancelled

    def test_heap_stays_bounded_under_schedule_cancel_churn(self):
        from repro.sim.clock import _COMPACT_MIN, _COMPACT_RATIO

        loop = EventLoop()
        for i in range(50_000):
            loop.call_at(float(i + 1), lambda: None).cancel()
        # Amortized bound: at most ratio * live + compaction threshold
        # cancelled entries linger, never all 50k.
        assert loop.pending() <= _COMPACT_MIN + _COMPACT_RATIO * loop.live_pending() + 1
        assert loop.compactions >= 1

    def test_compaction_preserves_dispatch_order(self):
        from repro.sim.clock import _COMPACT_MIN

        loop = EventLoop()
        fired = []
        for i in range(20):
            loop.call_at(float(i), fired.append, i)
        # Force a compaction mid-stream with disposable far-future events.
        for handle in [loop.call_at(1e6, lambda: None) for _ in range(4 * _COMPACT_MIN)]:
            handle.cancel()
        assert loop.compactions >= 1
        loop.run()
        assert fired == list(range(20))

    def test_cancel_after_fire_is_noop(self):
        loop = EventLoop()
        fired = []
        handle = loop.call_at(1.0, fired.append, "x")
        loop.run()
        handle.cancel()  # late cancel of an already-fired event
        assert fired == ["x"]
        assert not handle.cancelled
        # The stray cancel must not skew the cancelled-entry accounting.
        assert loop.live_pending() == loop.pending() == 0

    def test_popping_cancelled_entries_updates_live_count(self):
        loop = EventLoop()
        for i in range(6):
            handle = loop.call_at(float(i + 1), lambda: None)
            if i % 2:
                handle.cancel()
        loop.run()
        assert loop.pending() == 0
        assert loop.live_pending() == 0
        assert loop.events_fired == 3
