"""Unit tests for the virtual clock / event loop."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.clock import EventLoop


def test_starts_at_zero():
    assert EventLoop().now == 0.0


def test_call_at_fires_in_time_order():
    loop = EventLoop()
    fired = []
    loop.call_at(2.0, fired.append, "b")
    loop.call_at(1.0, fired.append, "a")
    loop.call_at(3.0, fired.append, "c")
    loop.run()
    assert fired == ["a", "b", "c"]


def test_same_time_fires_in_scheduling_order():
    loop = EventLoop()
    fired = []
    for tag in range(10):
        loop.call_at(1.0, fired.append, tag)
    loop.run()
    assert fired == list(range(10))


def test_call_after_is_relative():
    loop = EventLoop()
    seen = []
    loop.call_after(1.0, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [1.0]


def test_nested_scheduling():
    loop = EventLoop()
    seen = []

    def outer():
        seen.append(("outer", loop.now))
        loop.call_after(0.5, inner)

    def inner():
        seen.append(("inner", loop.now))

    loop.call_at(1.0, outer)
    loop.run()
    assert seen == [("outer", 1.0), ("inner", 1.5)]


def test_scheduling_in_past_raises():
    loop = EventLoop()
    loop.call_at(1.0, lambda: None)
    loop.run()
    with pytest.raises(SimulationError):
        loop.call_at(0.5, lambda: None)


def test_negative_delay_raises():
    with pytest.raises(SimulationError):
        EventLoop().call_after(-0.1, lambda: None)


def test_run_until_stops_at_deadline():
    loop = EventLoop()
    fired = []
    loop.call_at(1.0, fired.append, 1)
    loop.call_at(5.0, fired.append, 5)
    loop.run_until(2.0)
    assert fired == [1]
    assert loop.now == 2.0
    loop.run_until(6.0)
    assert fired == [1, 5]


def test_run_until_advances_clock_even_with_empty_heap():
    loop = EventLoop()
    loop.run_until(7.5)
    assert loop.now == 7.5


def test_cancel_prevents_firing():
    loop = EventLoop()
    fired = []
    handle = loop.call_at(1.0, fired.append, "x")
    handle.cancel()
    loop.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_twice_is_noop():
    loop = EventLoop()
    handle = loop.call_at(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    loop.run()


def test_stop_interrupts_run():
    loop = EventLoop()
    fired = []
    loop.call_at(1.0, fired.append, 1)
    loop.call_at(2.0, loop.stop)
    loop.call_at(3.0, fired.append, 3)
    loop.run()
    assert fired == [1]
    loop.run()
    assert fired == [1, 3]


def test_events_fired_counter():
    loop = EventLoop()
    for i in range(5):
        loop.call_at(float(i), lambda: None)
    loop.run()
    assert loop.events_fired == 5


def test_max_events_bound():
    loop = EventLoop()
    fired = []
    for i in range(10):
        loop.call_at(float(i), fired.append, i)
    loop.run(max_events=3)
    assert fired == [0, 1, 2]


def test_handle_reports_time():
    loop = EventLoop()
    handle = loop.call_at(4.2, lambda: None)
    assert handle.time == 4.2


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
def test_events_always_fire_in_nondecreasing_time_order(times):
    loop = EventLoop()
    seen = []
    for t in times:
        loop.call_at(t, lambda: seen.append(loop.now))
    loop.run()
    assert seen == sorted(seen)
    assert len(seen) == len(times)
