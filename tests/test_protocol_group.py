"""Unit tests for the embedded per-zone Paxos group engine."""

from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.node import Replica
from repro.protocols.group import GroupEngine


class GroupedReplica(Replica):
    """Test harness: every replica runs one group engine for its zone and
    journals executed items."""

    def __init__(self, deployment, node_id):
        super().__init__(deployment, node_id)
        self.executed: list = []
        self.engine = GroupEngine(
            self,
            deployment.config.ids_in_zone(node_id.zone),
            lambda item, is_leader: self.executed.append(item),
            flush_interval=0.01,
        )


def make(zones=2, per_zone=3, seed=0):
    return Deployment(Config.lan(zones, per_zone, seed=seed)).start(GroupedReplica)


def test_leader_is_lowest_id():
    dep = make()
    assert dep.replicas[NodeID(1, 1)].engine.is_leader
    assert not dep.replicas[NodeID(1, 2)].engine.is_leader
    assert dep.replicas[NodeID(2, 1)].engine.is_leader


def test_items_execute_on_all_group_members_in_order():
    dep = make()
    leader = dep.replicas[NodeID(1, 1)]
    for i in range(5):
        leader.engine.propose(("item", i))
    dep.run_for(0.2)
    expected = [("item", i) for i in range(5)]
    for n in (1, 2, 3):
        assert dep.replicas[NodeID(1, n)].executed == expected


def test_items_do_not_leak_across_zones():
    dep = make()
    dep.replicas[NodeID(1, 1)].engine.propose(("z1",))
    dep.replicas[NodeID(2, 1)].engine.propose(("z2",))
    dep.run_for(0.2)
    assert dep.replicas[NodeID(1, 2)].executed == [("z1",)]
    assert dep.replicas[NodeID(2, 2)].executed == [("z2",)]


def test_execution_waits_for_majority_and_recovers_after_heal():
    dep = make(zones=1, per_zone=3)
    leader = dep.replicas[NodeID(1, 1)]
    # Cut the leader off from BOTH followers: no majority, no execution.
    dep.drop(NodeID(1, 1), NodeID(1, 2), duration=0.5, at=0.0)
    dep.drop(NodeID(1, 1), NodeID(1, 3), duration=0.5, at=0.0)
    leader.engine.propose(("blocked",))
    dep.run_for(0.3)
    assert leader.executed == []
    # Links heal; the flush-tick retransmission re-delivers the accept and
    # the slot finally commits and executes on everyone.
    dep.run_for(0.6)
    leader.engine.propose(("after",))
    dep.run_for(0.2)
    for n in (1, 2, 3):
        assert dep.replicas[NodeID(1, n)].executed == [("blocked",), ("after",)]


def test_follower_gap_fill_after_partial_loss():
    dep = make(zones=1, per_zone=3)
    leader = dep.replicas[NodeID(1, 1)]
    # Follower 1.3 misses a window of accepts; 1.2 keeps the quorum alive,
    # so the slots commit without 1.3 — which must then gap-fill.
    dep.drop(NodeID(1, 1), NodeID(1, 3), duration=0.05, at=0.0)
    for i in range(5):
        leader.engine.propose(("item", i))
    dep.run_for(1.0)
    expected = [("item", i) for i in range(5)]
    assert dep.replicas[NodeID(1, 3)].executed == expected


def test_single_member_group_commits_immediately():
    dep = make(zones=1, per_zone=1)
    leader = dep.replicas[NodeID(1, 1)]
    leader.engine.propose(("solo",))
    dep.run_for(0.01)
    assert leader.executed == [("solo",)]


def test_leader_callback_sees_is_leader_flag():
    flags = []

    class FlagReplica(Replica):
        def __init__(self, deployment, node_id):
            super().__init__(deployment, node_id)
            self.engine = GroupEngine(
                self,
                deployment.config.ids_in_zone(node_id.zone),
                lambda item, is_leader: flags.append((node_id, is_leader)),
                flush_interval=0.01,
            )

    dep = Deployment(Config.lan(1, 3, seed=1)).start(FlagReplica)
    dep.replicas[NodeID(1, 1)].engine.propose("x")
    dep.run_for(0.2)
    assert (NodeID(1, 1), True) in flags
    assert (NodeID(1, 2), False) in flags
