"""Durable analytic formulas and their conformance against the simulator.

The durability model extends the paper's Table-2 accounting with a WAL
fsync on the critical path:

- ``durability="fsync"``: every round carries one dedicated sync, so round
  occupancy grows to ``ts + d`` and capacity drops to ``1/(ts + d)``;
- ``durability="group"``: at most one sync is outstanding and coalesces
  later records, so capacity is sandwiched between the fsync floor and the
  in-memory ceiling, bounded by ``C/(C*ts + d)``;
- latency: a durable quorum ack waits for the follower's fsync, so
  Equation 7's quorum term stretches by ONE ``d`` (the leader's own fsync
  overlaps the network round trip).
"""

import pytest

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.sweep import closed_loop_sweep, max_throughput
from repro.bench.workload import WorkloadSpec
from repro.core.latency import durable_expected_latency, expected_latency
from repro.core.service import (
    DurabilityParams,
    ServiceParams,
    WAL_RECORD_BYTES_MODEL,
    durable_paxos_batched_service_time,
    durable_paxos_service_time,
    group_commit_capacity_bound,
    paxos_batched_service_time,
    paxos_service_time,
)
from repro.errors import ModelError
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.protocols.paxos import MultiPaxos


class TestDurabilityParams:
    def test_sync_cost_matches_disk_profile_formula(self):
        p = DurabilityParams(fsync_latency=100e-6, write_bandwidth_bps=200e6)
        assert p.sync_cost(0) == pytest.approx(100e-6)
        assert p.sync_cost() == pytest.approx(100e-6 + WAL_RECORD_BYTES_MODEL / 200e6)

    def test_defaults_mirror_simulator_disk_profile(self):
        from repro.sim.storage import DiskProfile

        model, sim = DurabilityParams(), DiskProfile()
        assert model.fsync_latency == sim.fsync_latency
        assert model.write_bandwidth_bps == sim.write_bandwidth_bps
        assert model.sync_cost(640) == pytest.approx(sim.sync_cost(640))

    def test_validation(self):
        with pytest.raises(ModelError):
            DurabilityParams(fsync_latency=-1)
        with pytest.raises(ModelError):
            DurabilityParams(write_bandwidth_bps=0)
        with pytest.raises(ModelError):
            DurabilityParams().sync_cost(-1)


class TestDurableServiceTime:
    def test_is_ts_plus_sync(self):
        d = DurabilityParams().sync_cost()
        assert durable_paxos_service_time(9) == pytest.approx(paxos_service_time(9) + d)

    def test_batched_b1_reduces_to_unbatched(self):
        assert durable_paxos_batched_service_time(9, 1) == pytest.approx(
            durable_paxos_service_time(9)
        )

    def test_batching_amortizes_the_fsync(self):
        # Per-request sync overhead shrinks with B: the fat record's
        # transfer grows linearly but the fsync latency is paid once.
        overhead = [
            durable_paxos_batched_service_time(9, b) - paxos_batched_service_time(9, b)
            for b in (1, 4, 16, 64)
        ]
        assert overhead == sorted(overhead, reverse=True)
        assert overhead[-1] < overhead[0] / 10

    def test_group_bound_interpolates_fsync_to_memory(self):
        ts = paxos_service_time(9)
        d = DurabilityParams().sync_cost()
        assert group_commit_capacity_bound(ts, d, 1) == pytest.approx(1.0 / (ts + d))
        assert group_commit_capacity_bound(ts, d, 1e9) == pytest.approx(1.0 / ts, rel=1e-3)
        caps = [group_commit_capacity_bound(ts, d, c) for c in (1, 4, 16, 64, 256)]
        assert caps == sorted(caps)

    def test_group_bound_validation(self):
        with pytest.raises(ModelError):
            group_commit_capacity_bound(0.0, 1e-4, 8)
        with pytest.raises(ModelError):
            group_commit_capacity_bound(1e-4, -1.0, 8)
        with pytest.raises(ModelError):
            group_commit_capacity_bound(1e-4, 1e-4, 0)


class TestDurableLatencyFormula:
    def test_zero_sync_reduces_to_eq7(self):
        assert durable_expected_latency(0.0, 0.3, 4.0, 6.0, 0.0) == expected_latency(
            0.0, 0.3, 4.0, 6.0
        )

    def test_adds_exactly_one_sync_delay_to_quorum_term(self):
        base = expected_latency(0.0, 0.0, 4.0, 6.0)
        durable = durable_expected_latency(0.0, 0.0, 4.0, 6.0, 0.5)
        assert durable - base == pytest.approx(0.5)  # one d, not two

    def test_validation(self):
        with pytest.raises(ModelError):
            durable_expected_latency(0.0, 0.0, 1.0, 1.0, -0.1)


# ---------------------------------------------------------------------------
# Conformance: the formulas against the simulator
# ---------------------------------------------------------------------------

SPEC = WorkloadSpec(keys=1000, write_ratio=0.5)


def _knee(**kw) -> float:
    cfg = Config.lan(3, 3, seed=55, **kw)

    def make():
        return Deployment(cfg).start(MultiPaxos)

    points = closed_loop_sweep(
        make, SPEC, (32, 96), duration=0.35, warmup=0.07, settle=0.05
    )
    return max_throughput(points)


def _unloaded_mean_latency_s(**kw) -> float:
    cfg = Config.lan(3, 3, seed=77, **kw)
    dep = Deployment(cfg).start(MultiPaxos)
    bench = ClosedLoopBenchmark(
        dep, WorkloadSpec(keys=100, write_ratio=1.0), concurrency=1
    )
    return bench.run(duration=0.5, warmup=0.1, settle=0.05).latency.mean / 1e3


def test_fsync_capacity_conformance():
    """Measured fsync-mode knee matches ``1/(ts + d)`` within a few %."""
    measured = _knee(durability="fsync")
    predicted = 1.0 / durable_paxos_service_time(9)
    assert measured == pytest.approx(predicted, rel=0.05)


def test_group_commit_sandwich():
    """Group commit lands strictly between the fsync floor and the
    in-memory ceiling, below the ``C/(C*ts + d)`` bound."""
    mem, fsync, group = _knee(), _knee(durability="fsync"), _knee(durability="group")
    assert fsync < group <= mem * 1.02
    bound = group_commit_capacity_bound(
        paxos_service_time(9), DurabilityParams().sync_cost(), 96
    )
    assert group <= bound * 1.05
    # and group commit recovers most of the fsync-mode capacity loss
    assert group >= mem - 0.25 * (mem - fsync)


def test_unloaded_latency_pays_one_sync_delay():
    """At concurrency 1 durable latency exceeds in-memory latency by
    exactly one ``d`` — the follower's fsync on the quorum path; the
    leader's own fsync hides behind the quorum round trip."""
    mem = _unloaded_mean_latency_s()
    fsync = _unloaded_mean_latency_s(durability="fsync")
    d = DurabilityParams().sync_cost()
    assert fsync - mem == pytest.approx(d, rel=0.05)
    # with one client there is never a sync to share: group == fsync
    group = _unloaded_mean_latency_s(durability="group")
    assert group == pytest.approx(fsync, rel=1e-6)
