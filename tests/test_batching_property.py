"""Property-based batching tests: fault schedules and span arithmetic.

- Under arbitrary seeded :class:`~repro.bench.nemesis.Nemesis` schedules
  (crashes mid-batch, dropped/slow/flaky links eating batched accepts), a
  batching MultiPaxos deployment must stay linearizable, keep consensus,
  and keep the tracer's books straight.
- For every traced request in a batched run, the span breakdown
  (wQ + ts + DL + DQ) must sum to that command's end-to-end latency —
  batching amortizes the *round*, but each command keeps its own
  accounting.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.nemesis import Nemesis
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.protocols.paxos import MultiPaxos

pytestmark = pytest.mark.slow

slow_settings = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

BATCHED = dict(batch_size=16, batch_window=0.001, pipeline_depth=8)


@slow_settings
@given(seed=st.integers(0, 10_000), nemesis_seed=st.integers(0, 10_000))
def test_batched_history_safe_under_nemesis(seed, nemesis_seed):
    cfg = Config.lan(3, 3, seed=seed, **BATCHED)
    deployment = Deployment(cfg).start(MultiPaxos)
    deployment.cluster.obs.tracer.enabled = True

    # Unlike the unbatched tracing property test we do NOT spare the
    # leader: crashing it mid-batch is exactly the case under test.
    nemesis = Nemesis(seed=nemesis_seed, horizon=0.6, events=3, max_duration=0.3)
    schedule = nemesis.unleash(deployment, at=0.05)
    schedule_text = "; ".join(str(event) for event in schedule)

    spec = WorkloadSpec(keys=10, write_ratio=0.5)
    bench = ClosedLoopBenchmark(deployment, spec, concurrency=8, retry_timeout=0.3)
    bench.run(duration=0.5, warmup=0.0, settle=0.05)
    deployment.run_for(2.0)  # drain retries, re-elections, late replies

    linearizable, consensus = deployment.verify()
    assert linearizable, schedule_text
    assert consensus, schedule_text

    tracer = deployment.cluster.obs.tracer
    completed = sum(client.completed for client in deployment.clients)
    failed = sum(client.failed for client in deployment.clients)
    finished_ok = sum(1 for span in tracer.finished if not span.failed)
    finished_failed = sum(1 for span in tracer.finished if span.failed)
    assert finished_ok == completed, schedule_text
    assert finished_failed == failed, schedule_text
    in_flight = sum(client.outstanding for client in deployment.clients)
    assert tracer.open_count == in_flight, schedule_text
    for span in tracer.finished:
        assert span.monotone(), f"{schedule_text}: {span.events}"


@slow_settings
@given(seed=st.integers(0, 10_000), concurrency=st.integers(4, 48))
def test_batched_span_breakdowns_sum_to_latency(seed, concurrency):
    cfg = Config.lan(3, 3, seed=seed, **BATCHED)
    deployment = Deployment(cfg).start(MultiPaxos)
    deployment.cluster.obs.tracer.enabled = True
    bench = ClosedLoopBenchmark(deployment, WorkloadSpec(keys=50), concurrency)
    bench.run(duration=0.25, warmup=0.05, settle=0.05)
    breakdowns = deployment.cluster.obs.tracer.breakdowns()
    assert breakdowns, "batched run produced no traced spans"
    for d in breakdowns:
        assert d["wq"] >= 0 and d["ts"] > 0 and d["dl"] > 0 and d["dq"] >= 0
        assert d["wq"] + d["ts"] + d["dl"] + d["dq"] == pytest.approx(
            d["total"], rel=1e-9
        )
