"""Determinism under parallelism: ``run_grid`` must be a pure fan-out.

Sharding independent simulations over worker processes may not change a
single result: the same (protocol, config, seed, workload) job must
produce a byte-identical outcome whether it ran inline (``workers=1``),
in a process pool (``workers=4``), or interleaved with different
neighbors.  These tests pin that, plus the grid's ordering and error
contracts.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.parallel import DeploymentFactory, run_grid
from repro.bench.sweep import closed_loop_sweep
from repro.bench.workload import WorkloadSpec
from repro.errors import SimulationError
from repro.paxi.config import Config
from repro.protocols.paxos import MultiPaxos
from repro.protocols.raft import Raft


def _sweep_json(workers: int, protocol=MultiPaxos, seed: int = 55) -> str:
    """One small two-point sweep, serialized canonically."""
    make = DeploymentFactory(protocol, Config.lan(3, 3, seed=seed))
    points = closed_loop_sweep(
        make,
        WorkloadSpec(keys=100, write_ratio=0.5),
        (2, 8),
        duration=0.3,
        warmup=0.05,
        settle=0.05,
        workers=workers,
    )
    return json.dumps(
        [
            {
                "concurrency": p.concurrency,
                "completed": p.completed,
                "throughput": repr(p.throughput),
                "mean_ms": repr(p.mean_latency_ms),
                "p99_ms": repr(p.p99_latency_ms),
            }
            for p in points
        ],
        sort_keys=True,
    )


class TestRunGridDeterminism:
    @pytest.mark.slow
    def test_workers_do_not_change_results(self):
        serial = _sweep_json(workers=1)
        parallel = _sweep_json(workers=4)
        assert serial == parallel

    @pytest.mark.slow
    def test_mixed_protocol_grid_matches_inline_runs(self):
        """A heterogeneous grid resolves each job independently of its
        neighbors, in submission order."""

        def job(protocol, seed):
            return (_collect, (protocol, seed))

        grid = [job(MultiPaxos, 7), job(Raft, 7), job(MultiPaxos, 19)]
        inline = [fn(*args) for fn, args in grid]
        pooled = run_grid(grid, workers=3)
        assert pooled == inline


def _collect(protocol, seed: int) -> dict:
    """Module-level so it is picklable by the process pool."""
    from repro.bench.benchmarker import ClosedLoopBenchmark
    from repro.paxi.deployment import Deployment

    deployment = Deployment(Config.lan(3, 3, seed=seed)).start(protocol)
    result = ClosedLoopBenchmark(
        deployment, WorkloadSpec(keys=50), concurrency=4
    ).run(duration=0.3, warmup=0.05, settle=0.05)
    return {
        "completed": result.completed,
        "failed": result.failed,
        "throughput": repr(result.throughput),
        "latencies": repr(result.latency.mean),
    }


class TestRunGridContract:
    def test_results_come_back_in_job_order(self):
        jobs = [(_echo, (i,)) for i in range(10)]
        assert run_grid(jobs, workers=4) == list(range(10))

    def test_single_worker_runs_inline(self):
        assert run_grid([(_echo, (41,)), (_echo, (42,))], workers=1) == [41, 42]

    def test_empty_grid(self):
        assert run_grid([], workers=4) == []

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(SimulationError):
            run_grid([(_echo, (1,))], workers=0)

    def test_deployment_factory_is_picklable(self):
        import pickle

        make = DeploymentFactory(MultiPaxos, Config.lan(3, 3, seed=5))
        clone = pickle.loads(pickle.dumps(make))
        assert clone == make


def _echo(value):
    return value
