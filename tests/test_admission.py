"""Tests for admission control: bounded ingress queues, shed policies,
explicit Rejected replies, and the rejected-is-not-lost guarantee."""

import pytest

from repro.errors import ConfigError, Overloaded
from repro.paxi.config import SHED_POLICIES, Config
from repro.paxi.deployment import Deployment
from repro.paxi.message import ClientReply, ClientRequest, Command
from repro.paxi.node import Replica
from repro.paxi.session import SessionOptions
from repro.protocols.paxos import MultiPaxos

from tests.conftest import assert_correct


class Echo(Replica):
    def __init__(self, deployment, node_id):
        super().__init__(deployment, node_id)
        self.register(ClientRequest, self.on_request)

    def on_request(self, src, m):
        value = self.store.execute(m.command)
        self.send(
            m.client,
            ClientReply(request_id=m.request_id, ok=True, value=value, replied_by=self.id),
        )


class Mute(Replica):
    """Never replies — admitted requests hold their inflight slot forever."""

    def __init__(self, deployment, node_id):
        super().__init__(deployment, node_id)
        self.register(ClientRequest, lambda src, m: None)


def _single(factory=Echo, **admission):
    dep = Deployment(Config.lan(1, 1, seed=9, **admission)).start(factory)
    return dep, next(iter(dep.replicas.values()))


class TestConfigSurface:
    def test_shed_policy_validated(self):
        with pytest.raises(ConfigError):
            Config.lan(1, 3, queue_limit=8, shed_policy="yolo")
        for policy in SHED_POLICIES:
            Config.lan(1, 3, queue_limit=8, shed_policy=policy)

    def test_limits_must_be_positive_ints(self):
        with pytest.raises(ConfigError):
            Config.lan(1, 3, queue_limit=0)
        with pytest.raises(ConfigError):
            Config.lan(1, 3, max_inflight=-4)
        with pytest.raises(ConfigError):
            Config.lan(1, 3, queue_limit=2.5)

    def test_admission_enabled_property(self):
        assert not Config.lan(1, 3).admission_enabled
        assert Config.lan(1, 3, queue_limit=8).admission_enabled
        assert Config.lan(1, 3, max_inflight=64).admission_enabled

    def test_json_round_trip(self):
        config = Config.lan(
            1, 3, seed=4, queue_limit=16, max_inflight=64, shed_policy="drop_oldest"
        )
        restored = Config.from_json(config.to_json())
        assert restored.queue_limit == 16
        assert restored.max_inflight == 64
        assert restored.shed_policy == "drop_oldest"

    def test_json_omits_admission_when_disabled(self):
        import json
        assert json.loads(Config.lan(1, 3).to_json()).get("admission") is None

    def test_no_admission_no_state(self):
        dep, replica = _single()
        assert replica._admission is None
        assert replica.shed_count == 0


class TestQueueLimit:
    def _backlogged(self, **admission):
        """One Echo node whose server is hogged by a long foreign job, so
        client requests pile up in its queue deterministically."""
        dep, replica = _single(**admission)
        client = dep.new_client()
        replica._server.submit(10.0, lambda: None)  # occupies the CPU
        return dep, replica, client

    def test_reject_sheds_beyond_limit(self):
        dep, replica, client = self._backlogged(queue_limit=2, shed_policy="reject")
        for i in range(5):
            client.invoke(Command.put("k", i))
        dep.run_for(0.1)
        # The hog is in service (queue_length 1); one request fits under
        # the limit of 2, the rest bounce with an explicit reply.
        assert client.rejected == 4
        assert replica.shed_count == 4
        assert replica._admission.shed_by_reason == {"queue_full": 4}
        assert client.outstanding == 1  # the admitted one, still queued

    def test_first_attempt_rejection_leaves_history_clean(self):
        dep, replica, client = self._backlogged(queue_limit=1, shed_policy="reject")
        client.invoke(Command.put("k", 1))
        dep.run_for(0.1)
        assert client.rejected == 1
        assert client.failure_reason(1) == "rejected"
        # Provably unexecuted: the write must not haunt the checker as a
        # maybe-applied pending operation.
        assert dep.history.in_flight == 0

    def test_drop_oldest_evicts_queued_request_for_fresh_one(self):
        dep, replica, client = self._backlogged(queue_limit=2, shed_policy="drop_oldest")
        ids = [client.invoke(Command.put("k", i)) for i in range(4)]
        dep.run_for(0.1)
        # Each newcomer evicts the previously queued request: three bounce,
        # the freshest one keeps the slot.
        assert client.rejected == 3
        assert replica._admission.shed_by_reason == {"queue_full": 3}
        assert client.outstanding == 1
        for request_id in ids[:3]:
            assert client.failure_reason(request_id) == "rejected"
        assert client.failure_reason(ids[3]) is None

    def test_drop_oldest_without_evictable_job_rejects_newcomer(self):
        # The queue is full of non-client work: nothing to evict, so the
        # arriving request itself is refused.
        dep, replica = _single(queue_limit=1, shed_policy="drop_oldest")
        client = dep.new_client()
        replica._server.submit(10.0, lambda: None)  # in service
        replica._server.submit(10.0, lambda: None)  # queued: length hits limit
        client.invoke(Command.put("k", 1))
        dep.run_for(0.1)
        assert client.rejected == 1

    def test_rejected_reply_is_cheap(self):
        # Shedding must not consume the melting replica's CPU: the hog job
        # is still in service, yet rejections already came back.
        dep, replica, client = self._backlogged(queue_limit=1, shed_policy="reject")
        client.invoke(Command.put("k", 1))
        dep.run_for(0.05)
        assert client.rejected == 1
        assert replica._server.stats.jobs_completed == 0


class TestDeadlinePolicy:
    def test_doomed_requests_shed_early(self):
        dep, replica = _single(queue_limit=1000, shed_policy="deadline")
        client = dep.new_client()
        replica._server.submit(10.0, lambda: None)  # in service: not backlog
        replica._server.submit(10.0, lambda: None)  # queued: 10s of backlog
        hopeless = client.invoke(Command.put("k", 1), deadline=dep.now + 1.0)
        patient = client.invoke(Command.put("k", 2), deadline=dep.now + 60.0)
        undated = client.invoke(Command.put("k", 3))
        dep.run_for(0.1)
        assert client.failure_reason(hopeless) == "rejected"
        assert replica._admission.shed_by_reason == {"deadline": 1}
        assert client.failure_reason(patient) is None
        assert client.failure_reason(undated) is None  # no deadline: never shed


class TestMaxInflight:
    def test_inflight_cap_rejects_excess(self):
        dep, replica = _single(Mute, max_inflight=2)
        client = dep.new_client()
        for i in range(3):
            client.invoke(Command.put("k", i))
        dep.run_for(0.1)
        assert client.rejected == 1
        assert replica._admission.shed_by_reason == {"inflight": 1}
        assert len(replica._admission.inflight) == 2

    def test_expired_slots_are_purged(self):
        dep, replica = _single(Mute, max_inflight=2)
        client = dep.new_client()
        client.invoke(Command.put("k", 1), deadline=dep.now + 0.05)
        client.invoke(Command.put("k", 2), deadline=dep.now + 0.05)
        dep.run_for(0.2)  # both issuers' patience has long expired
        client.invoke(Command.put("k", 3))
        dep.run_for(0.1)
        assert client.rejected == 0  # dead slots made room
        assert len(replica._admission.inflight) == 1

    def test_reply_releases_slot(self):
        dep, replica = _single(Echo, max_inflight=1)
        client = dep.new_client()
        client.invoke(Command.put("k", 1))
        dep.run_for(0.1)  # round trip completes, slot freed
        client.invoke(Command.put("k", 2))
        dep.run_for(0.1)
        assert client.rejected == 0
        assert client.completed == 2
        assert replica._admission.inflight == {}


class TestEndToEnd:
    def test_rejected_is_not_lost_under_paxos(self):
        """Overdriving an admission-controlled Paxos cluster: shed requests
        are clean failures, and the surviving history stays linearizable."""
        dep = Deployment(Config.lan(1, 3, seed=13, queue_limit=4)).start(MultiPaxos)
        dep.run_for(0.2)  # leader election
        client = dep.new_client()
        for i in range(400):
            client.invoke(Command.put(f"k{i % 7}", i))
        dep.run_for(2.0)
        assert client.rejected > 0, "the burst should overflow queue_limit=4"
        assert client.completed > 0
        assert client.rejected + client.completed == 400
        assert_correct(dep)

    def test_session_surfaces_rejection(self):
        dep, replica = _single(queue_limit=1, shed_policy="reject")
        replica._server.submit(10.0, lambda: None)
        session = dep.new_session()
        result = session.put("k", 1)
        assert not result.ok
        assert result.failure == "rejected"

    def test_strict_session_raises_overloaded(self):
        dep, replica = _single(queue_limit=1, shed_policy="reject")
        replica._server.submit(10.0, lambda: None)
        session = dep.new_session(options=SessionOptions(strict=True))
        with pytest.raises(Overloaded):
            session.put("k", 1)
