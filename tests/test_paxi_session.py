"""The typed Session facade — the only supported client surface.

``deployment.new_session()`` is the supported way to issue individual
commands: ``put``/``get`` return a :class:`~repro.paxi.session.Result`
with the value, latency, and replying replica.  The old
``Client.get``/``put`` shims were removed after their deprecation cycle;
callback-driven load generation goes through ``Client.invoke``.
"""

from __future__ import annotations

import pytest

from repro.errors import InvalidOptions, NoQuorum
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import Command
from repro.paxi.session import Result, Session, SessionOptions
from repro.protocols.paxos import MultiPaxos
from repro.protocols.raft import Raft


def _deployment(factory=MultiPaxos, **kwargs):
    deployment = Deployment(Config.lan(3, 3, seed=3, **kwargs)).start(factory)
    deployment.run_for(0.05)  # leader setup
    return deployment


def test_session_put_get_roundtrip():
    deployment = _deployment()
    session = deployment.new_session()
    put = session.put("x", 42)
    assert put.ok and bool(put)
    assert put.latency_ms > 0
    assert put.replica in deployment.replicas
    assert put.version >= 1
    got = session.get("x")
    assert got.ok and got.value == 42
    assert got.request_id != put.request_id


def test_session_works_with_batching_enabled():
    deployment = _deployment(batch_size=16, batch_window=0.001, pipeline_depth=8)
    session = deployment.new_session()
    assert session.put("k", "v").ok
    assert session.get("k").value == "v"


def test_session_binds_to_site_and_zone():
    deployment = Deployment(
        Config.wan(("VA", "OH", "CA"), 3, seed=3)
    ).start(MultiPaxos)
    deployment.run_for(0.05)
    by_site = deployment.new_session(site="OH")
    assert by_site.site == "OH"
    by_zone = deployment.new_session(zone=3)
    assert by_zone.site == "CA"
    assert isinstance(by_zone, Session)
    assert by_zone.address != by_site.address


def test_session_timeout_returns_failed_result():
    deployment = _deployment()
    victim = NodeID(3, 3)
    deployment.crash(victim, 10.0)
    deployment.run_for(0.01)
    session = deployment.new_session(max_wait=0.05)
    result = session.execute(Command.get("x"), opts=SessionOptions(target=victim))
    assert isinstance(result, Result)
    assert not result.ok and not bool(result)
    assert result.replica is None and result.value is None
    assert result.latency_ms >= 0.05 * 1000 * 0.9


def test_session_fault_commands_delegate():
    deployment = _deployment(factory=Raft)
    session = deployment.new_session()
    session.crash(NodeID(2, 2), 0.1)
    session.drop(NodeID(1, 1), NodeID(1, 2), 0.1)
    session.slow(NodeID(1, 2), NodeID(1, 3), 0.1)
    session.flaky(NodeID(2, 1), NodeID(2, 3), 0.1, probability=0.5)
    deployment.run_for(0.3)  # faults applied and expired without blowing up
    assert session.put("y", 1).ok


def test_client_get_put_shims_are_gone():
    """The deprecation cycle is over: callback load generation goes through
    ``Client.invoke``; typed calls go through the Session facade."""
    deployment = _deployment()
    client = deployment.new_client()
    assert not hasattr(client, "put") and not hasattr(client, "get")
    seen = {}
    client.invoke(Command.put("k", 7), on_done=lambda r, l: seen.setdefault("put", r))
    deployment.run_for(0.1)
    client.invoke(Command.get("k"), on_done=lambda r, l: seen.setdefault("get", r))
    deployment.run_for(0.1)
    assert seen["put"].ok and seen["get"].value == 7
    assert client.completed == 2


def test_session_per_call_kwargs_deprecated_but_work():
    """``target=`` / ``consistency=`` per-call keywords fold into a
    SessionOptions overlay for one release, with a DeprecationWarning."""
    deployment = _deployment()
    session = deployment.new_session()
    with pytest.deprecated_call():
        assert session.put("k", 1, target=NodeID(1, 1)).ok
    with pytest.deprecated_call():
        got = session.get("k", target=NodeID(1, 1))
    assert got.ok and got.value == 1


def test_session_options_validation_and_strict_mode():
    with pytest.raises(InvalidOptions):
        SessionOptions(consistency="bogus")
    with pytest.raises(InvalidOptions):
        SessionOptions(max_wait=-1.0)
    with pytest.raises(InvalidOptions):
        # same knob in options and keyword shorthand is ambiguous
        Session(_deployment(), SessionOptions(max_wait=1.0), max_wait=2.0)
    deployment = _deployment()
    victim = NodeID(3, 3)
    deployment.crash(victim, 10.0)
    deployment.run_for(0.01)
    strict = deployment.new_session(
        options=SessionOptions(max_wait=0.05, strict=True)
    )
    with pytest.raises(NoQuorum):
        strict.execute(Command.get("x"), opts=SessionOptions(target=victim))


def test_session_options_merged_over_inherits_unset_fields():
    base = SessionOptions(site="VA", max_wait=2.0, consistency="lease")
    overlay = SessionOptions(consistency="quorum", strict=True)
    merged = overlay.merged_over(base)
    assert merged.site == "VA" and merged.max_wait == 2.0
    assert merged.consistency == "quorum" and merged.strict
