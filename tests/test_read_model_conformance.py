"""Measured read latency and leader work vs. the read-path models.

``test_obs_latency_decomposition.py`` pins the *write* path against the
M/D/1 model; this suite does the same for the read paths added in
``repro.core.reads``:

- a **lease read** must cost the client one round trip to the leader
  (``LeaseReadPaxosModel.read_latency_ms``) and the leader exactly one
  receive + one reply (``read_service_time``) — no quorum round;
- a **quorum read** must cost the local trip plus the read-quorum poll's
  completing reply (``QuorumReadPaxosModel.read_latency_ms``), and its
  total cluster work must match coordinator + polled-member formulas;
- the knee of a read-heavy lease-read sweep must land on the model's
  ``max_throughput`` — the same conformance band ``BENCH_reads.json``
  gates in CI, pinned here for one protocol so a regression fails locally
  before the bench job sees it.
"""

from __future__ import annotations

import pytest

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.core.reads import (
    LeaseReadPaxosModel,
    QuorumReadPaxosModel,
    quorum_read_coordinator_work,
    quorum_read_member_work,
    read_service_time,
)
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.session import SessionOptions
from repro.protocols.paxos import MultiPaxos

N = 5
LEASE_PARAMS = dict(lease_duration=0.5, max_clock_skew=0.005)


def _deployment(seed: int = 47):
    cfg = Config.lan(1, N, seed=seed, **LEASE_PARAMS)
    dep = Deployment(cfg).start(MultiPaxos)
    session = dep.new_session()
    assert session.put("k", "seed-value").ok
    dep.run_for(0.3)  # lease granted; the commit is applied everywhere
    return dep, session


def _mean_read_latency_ms(session, consistency: str, reads: int = 40) -> float:
    latencies = []
    for _ in range(reads):
        result = session.get("k", opts=SessionOptions(consistency=consistency))
        assert result.ok and result.read_mode == consistency
        latencies.append(result.latency_ms)
    return sum(latencies) / len(latencies)


def test_lease_read_latency_is_one_leader_round_trip():
    dep, session = _deployment()
    model = LeaseReadPaxosModel(dep.config.topology, write_ratio=0.5)
    predicted = model.read_latency_ms()
    measured = _mean_read_latency_ms(session, "lease")
    assert predicted * 0.7 <= measured <= predicted * 1.4, (
        f"lease read {measured:.3f}ms vs model {predicted:.3f}ms"
    )


def test_quorum_read_latency_pays_the_poll():
    dep, session = _deployment()
    model = QuorumReadPaxosModel(dep.config.topology, write_ratio=0.5)
    predicted = model.read_latency_ms()
    measured = _mean_read_latency_ms(session, "quorum")
    assert predicted * 0.6 <= measured <= predicted * 1.6, (
        f"quorum read {measured:.3f}ms vs model {predicted:.3f}ms"
    )
    # ...and it must be strictly dearer than a lease read but far cheaper
    # than a full consensus round through the leader's queue.
    lease = _mean_read_latency_ms(session, "lease")
    assert measured > lease


def _busy_per_read(read_mode: str, seed: int = 53):
    """Drive a read-only closed loop and return (per-node busy seconds,
    completed reads).  Write ratio 0 isolates the read path's work."""
    cfg = Config.lan(1, N, seed=seed, **LEASE_PARAMS)
    dep = Deployment(cfg).start(MultiPaxos)
    session = dep.new_session()
    assert session.put("k", "w0").ok
    dep.run_for(0.3)
    before = {
        nid: dep.replica(nid)._server.stats.busy_seconds
        for nid in dep.config.node_ids
    }
    spec = WorkloadSpec(keys=20, write_ratio=0.0, read_mode=read_mode)
    bench = ClosedLoopBenchmark(dep, spec, concurrency=8)
    result = bench.run(duration=0.4, warmup=0.0, settle=0.05)
    busy = {
        nid: dep.replica(nid)._server.stats.busy_seconds - before[nid]
        for nid in dep.config.node_ids
    }
    assert result.completed > 500
    return busy, result.completed


def test_lease_read_leader_work_matches_formula():
    """Each lease read costs the leader ``read_service_time`` — one
    incoming request, one serialized reply, two NIC transfers — and the
    followers nothing (heartbeat renewal aside)."""
    busy, completed = _busy_per_read("lease")
    params = LeaseReadPaxosModel(Config.lan(1, N, seed=1).topology).params
    predicted = read_service_time(params)
    measured = max(busy.values()) / completed  # the leader serves them all
    assert predicted * 0.8 <= measured <= predicted * 1.3, (
        f"lease read leader work {measured * 1e6:.1f}us vs "
        f"formula {predicted * 1e6:.1f}us"
    )
    # Followers see only heartbeats: a sliver of the leader's read work.
    assert min(busy.values()) < 0.15 * max(busy.values())


def test_quorum_read_total_work_matches_formula():
    """A quorum read costs the cluster one coordination (``RoundWork`` with
    N replaced by r) plus ``r - 1`` polled members' receive+reply."""
    busy, completed = _busy_per_read("quorum")
    params = QuorumReadPaxosModel(Config.lan(1, N, seed=1).topology).params
    r = N // 2 + 1
    predicted = (
        quorum_read_coordinator_work(r).service_time(params)
        + (r - 1) * quorum_read_member_work().service_time(params)
    )
    measured = sum(busy.values()) / completed
    assert predicted * 0.8 <= measured <= predicted * 1.3, (
        f"quorum read cluster work {measured * 1e6:.1f}us vs "
        f"formula {predicted * 1e6:.1f}us"
    )


@pytest.mark.slow
def test_lease_read_knee_tracks_model():
    """The read-heavy saturation knee must land on the model's capacity
    split — the local twin of the ``BENCH_reads.json`` CI gate."""
    write_ratio = 0.1
    cfg = Config.lan(3, 3, seed=61, **LEASE_PARAMS)
    dep = Deployment(cfg).start(MultiPaxos)
    spec = WorkloadSpec(keys=500, write_ratio=write_ratio, read_mode="lease")
    bench = ClosedLoopBenchmark(dep, spec, concurrency=96)
    result = bench.run(duration=0.5, warmup=0.1, settle=0.1)
    predicted = LeaseReadPaxosModel(
        cfg.topology, write_ratio=write_ratio
    ).max_throughput()
    assert predicted * 0.75 <= result.throughput <= predicted * 1.25, (
        f"lease knee {result.throughput:.0f} ops/s vs model {predicted:.0f}"
    )
