"""Measured per-request message counts vs. Table-2 role accounting.

Drives protocols through the simulator one request at a time (zero
queueing, no retries) and asserts that the per-request deltas of the
``repro.obs`` message counters at the busiest node equal the
:mod:`repro.core.service` / :mod:`repro.core.protocol_models` role
accounting — exactly for the conflict-free leader-based protocols, within
tolerance for EPaxos under conflicts.
"""

from __future__ import annotations

import math

import pytest

from repro.core.service import paxos_follower_work, paxos_leader_work
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import Command
from repro.protocols.epaxos import EPaxos
from repro.protocols.fpaxos import FPaxos
from repro.protocols.paxos import MultiPaxos

LEADER = NodeID(1, 1)
FOLLOWER = NodeID(1, 2)


def _drive_sequential(deployment, target, keys, settle=0.5):
    """Issue one request per key, each only after the previous completed,
    so no request ever queues behind another."""
    client = deployment.new_client(site=deployment.config.site_of(target))
    deployment.run_for(settle)
    for key in keys:
        done = []
        client.invoke(Command.put(key, f"v{key}"), target=target, on_done=lambda *_: done.append(1))
        for _ in range(200):
            deployment.run_for(0.005)
            if done:
                break
        assert done, f"request for key {key} never completed"
    return client


def _delta(metrics_before, metrics_after):
    sent = {
        name: metrics_after.sent[name] - metrics_before[0].get(name, 0)
        for name in metrics_after.sent
    }
    received = {
        name: metrics_after.received[name] - metrics_before[1].get(name, 0)
        for name in metrics_after.received
    }
    return (
        {k: v for k, v in sent.items() if v},
        {k: v for k, v in received.items() if v},
    )


def _counted(deployment, target, requests=20):
    """Per-request sent/received counts by message type at ``target``,
    averaged over ``requests`` primed, sequential, conflict-free writes."""
    node = deployment.cluster.obs.metrics.node(target)
    # Prime: leader election / first-touch effects settle outside the count.
    _drive_sequential(deployment, target, keys=[900001, 900002])
    before = (dict(node.sent), dict(node.received))
    _drive_sequential(deployment, target, keys=range(1, requests + 1), settle=0.0)
    sent, received = _delta(before, node)
    return (
        {name: count / requests for name, count in sent.items()},
        {name: count / requests for name, count in received.items()},
    )


@pytest.mark.parametrize("n", [3, 5, 9])
def test_multipaxos_leader_counts_match_model(n):
    cfg = Config.lan(1, n, seed=11, heartbeat_interval=None)
    deployment = Deployment(cfg).start(MultiPaxos)
    sent, received = _counted(deployment, LEADER)

    # Table 2 leader round: in = 1 request + (n-1) acks, out = (n-1)
    # accepts + 1 reply; nic_messages = 2n covers both directions.
    work = paxos_leader_work(n)
    assert received == {"ClientRequest": 1.0, "P2b": float(n - 1)}
    assert sent == {"P2a": float(n - 1), "ClientReply": 1.0}
    assert sum(received.values()) == work.incoming
    assert sum(sent.values()) + sum(received.values()) == work.nic_messages


def test_multipaxos_follower_counts_match_model():
    n = 5
    cfg = Config.lan(1, n, seed=11, heartbeat_interval=None)
    deployment = Deployment(cfg).start(MultiPaxos)
    node = deployment.cluster.obs.metrics.node(FOLLOWER)
    _drive_sequential(deployment, LEADER, keys=[900001, 900002])
    before = (dict(node.sent), dict(node.received))
    _drive_sequential(deployment, LEADER, keys=range(1, 21), settle=0.0)
    sent, received = _delta(before, node)

    work = paxos_follower_work()
    assert received == {"P2a": 20}  # one accept per round
    assert sent == {"P2b": 20}  # one ack per round
    assert sum(received.values()) / 20 == work.incoming
    assert (sum(sent.values()) + sum(received.values())) / 20 == work.nic_messages


def test_fpaxos_counts_identical_to_multipaxos():
    """FPaxos only shrinks the phase-2 *quorum*; the non-thrifty leader
    still broadcasts to everyone, so Table-2 counts are unchanged."""
    n = 9
    cfg = Config.lan(1, n, seed=11, heartbeat_interval=None, q2_size=3)
    deployment = Deployment(cfg).start(FPaxos)
    sent, received = _counted(deployment, LEADER)
    work = paxos_leader_work(n)
    assert received == {"ClientRequest": 1.0, "P2b": float(n - 1)}
    assert sent == {"P2a": float(n - 1), "ClientReply": 1.0}
    assert sum(sent.values()) + sum(received.values()) == work.nic_messages


def test_epaxos_conflict_free_counts_match_model():
    """EPaxos fast path (no conflicts): the model's round is in = n
    (request + n-1 PreAcceptOKs), out = n (n-1 PreAccepts + reply).
    Commit dissemination is excluded from the model's capacity accounting
    (it overlaps with the next round), so it is asserted separately."""
    n = 5
    cfg = Config.lan(1, n, seed=11)
    deployment = Deployment(cfg).start(EPaxos)
    sent, received = _counted(deployment, LEADER)

    assert received == {"ClientRequest": 1.0, "PreAcceptOK": float(n - 1)}
    # Model's out-direction NIC count: nic_messages - incoming = n.
    assert sent["PreAccept"] == float(n - 1)
    assert sent["ClientReply"] == 1.0
    assert sent["PreAccept"] + sent["ClientReply"] == float(n)
    # The documented delta: one commit broadcast per instance.
    assert sent["CommitMsg"] == float(n - 1)
    assert set(sent) == {"PreAccept", "ClientReply", "CommitMsg"}


def test_epaxos_with_conflicts_within_tolerance():
    """Under conflicts some instances take the extra Accept round.  The
    measured extra messages must scale with the *measured* conflict rate
    (slow-path instances / total), matching the model's ``c``-scaled extra
    RoundWork within tolerance."""
    n = 5
    requests = 60
    cfg = Config.lan(1, n, seed=13)
    deployment = Deployment(cfg).start(EPaxos)
    node = deployment.cluster.obs.metrics.node(LEADER)
    other = deployment.cluster.obs.metrics.node(NodeID(1, 2))

    # Interleave two clients writing the same key through different
    # command leaders: concurrent interfering instances -> slow path.
    site = deployment.config.site_of(LEADER)
    client_a = deployment.new_client(site=site)
    client_b = deployment.new_client(site=site)
    deployment.run_for(0.5)
    before = (dict(node.sent), dict(node.received))
    for i in range(requests):
        done = []
        client_a.invoke(Command.put(777, f"a{i}"), target=LEADER, on_done=lambda *_: done.append(1))
        client_b.invoke(
            Command.put(777, f"b{i}"), target=NodeID(1, 2), on_done=lambda *_: done.append(1)
        )
        for _ in range(200):
            deployment.run_for(0.005)
            if len(done) == 2:
                break
        assert len(done) == 2
    sent, received = _delta(before, node)

    slow_quorum = n // 2 + 1
    conflicts = sent.get("Accept", 0) / (n - 1)  # slow-path instances led here
    own = requests  # instances this node led
    assert conflicts > 0, "conflict workload produced no slow-path rounds"
    # Fast-path accounting still holds per led instance...
    assert sent["PreAccept"] == own * (n - 1)
    assert received["ClientRequest"] == own
    # ...and the extra Accept round's acks scale with the conflict count:
    # AcceptOK arrives from every peer (broadcast Accept), >= quorum - 1.
    accept_oks = received.get("AcceptOK", 0)
    assert accept_oks >= conflicts * (slow_quorum - 1)
    assert accept_oks <= conflicts * (n - 1) + 1e-9
    # The measured conflict rate is a probability.
    assert 0.0 < conflicts / own <= 1.0


def test_metrics_bytes_and_totals_consistent():
    """Bytes and message totals line up across the cluster: every message
    received was sent by someone, and byte counters match message sizes."""
    n = 3
    cfg = Config.lan(1, n, seed=7, heartbeat_interval=None)
    deployment = Deployment(cfg).start(MultiPaxos)
    _drive_sequential(deployment, LEADER, keys=range(1, 11))
    hub = deployment.cluster.obs.metrics
    total_sent = sum(m.messages_sent() for m in hub.nodes.values())
    total_received = sum(m.messages_received() for m in hub.nodes.values())
    assert total_sent == total_received
    assert total_sent == deployment.cluster.network.stats.messages_sent
    bytes_sent = sum(m.bytes_sent for m in hub.nodes.values())
    assert bytes_sent == deployment.cluster.network.stats.bytes_sent
    for metrics in hub.nodes.values():
        assert all(v >= 0 for v in metrics.sent.values())
        assert all(v >= 0 for v in metrics.received.values())


def test_reboot_sink_deliveries_are_not_counted_as_received():
    """While a node is down (reboot/wipe), peer messages land in the outage
    sink: the sender still pays (and counts) the send, but nothing is
    listening, so the victim's received counters must not move."""
    cfg = Config.lan(1, 3, seed=17, election_timeout=0.15)
    deployment = Deployment(cfg).start(MultiPaxos)
    _drive_sequential(deployment, LEADER, keys=[101, 102])
    hub = deployment.cluster.obs.metrics
    victim = hub.node(FOLLOWER)
    deployment.reboot(FOLLOWER, downtime=0.3)
    deployment.run_for(0.01)  # outage takes effect; in-flight messages sink
    received_before = victim.messages_received()
    leader_p2a_before = hub.node(LEADER).sent.get("P2a", 0)
    # Drive load while the victim is down: the 2/3 quorum still commits and
    # the leader keeps broadcasting P2a at the sink.
    _drive_sequential(deployment, LEADER, keys=[103, 104, 105], settle=0.0)
    assert hub.node(LEADER).sent.get("P2a", 0) > leader_p2a_before
    assert victim.messages_received() == received_before
    # After restart the fresh incarnation counts deliveries again.
    deployment.run_for(1.0)
    _drive_sequential(deployment, LEADER, keys=[106], settle=0.0)
    assert victim.messages_received() > received_before
