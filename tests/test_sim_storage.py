"""Unit tests for the simulated durable storage layer."""

import pytest

from repro.errors import SimulationError
from repro.sim.storage import (
    WAL_RECORD_BYTES,
    Disk,
    DiskProfile,
    Snapshot,
    WalRecord,
    WalWriter,
    WriteAheadLog,
)


class FakeServer:
    """Captures submitted jobs so tests control when syncs complete."""

    def __init__(self):
        self.jobs = []

    def submit(self, cost, fn, *args):
        self.jobs.append((cost, fn, args))

    def run_one(self):
        cost, fn, args = self.jobs.pop(0)
        fn(*args)
        return cost

    def drain(self):
        total = 0.0
        while self.jobs:
            total += self.run_one()
        return total


class TestDiskProfile:
    def test_sync_cost_is_latency_plus_transfer(self):
        profile = DiskProfile(fsync_latency=100e-6, write_bandwidth_bps=200e6)
        assert profile.sync_cost(0) == pytest.approx(100e-6)
        assert profile.sync_cost(200e6) == pytest.approx(100e-6 + 1.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(SimulationError):
            DiskProfile(fsync_latency=-1.0)
        with pytest.raises(SimulationError):
            DiskProfile(write_bandwidth_bps=0.0)
        with pytest.raises(SimulationError):
            DiskProfile().sync_cost(-1)


class TestWriteAheadLog:
    def test_append_accumulates_bytes(self):
        wal = WriteAheadLog()
        wal.append(WalRecord("accept", 1, "a"))
        wal.append(WalRecord("accept", 2, "b", size_bytes=100))
        assert len(wal) == 2
        assert wal.bytes_written == WAL_RECORD_BYTES + 100

    def test_truncate_keeps_slotless_records(self):
        wal = WriteAheadLog()
        wal.append(WalRecord("promise", None, "ballot"))
        for slot in range(1, 6):
            wal.append(WalRecord("accept", slot, slot))
        dropped = wal.truncate_through(3)
        assert dropped == 3
        kinds = [(r.kind, r.slot) for r in wal.records]
        assert ("promise", None) in kinds
        assert {s for _, s in kinds if s is not None} == {4, 5}


class TestDisk:
    def test_install_snapshot_truncates_wal(self):
        disk = Disk()
        for slot in range(1, 5):
            disk.wal.append(WalRecord("accept", slot, slot))
        disk.install_snapshot(Snapshot(upto=2, payload={}, size_bytes=10))
        assert disk.snapshot.upto == 2
        assert [r.slot for r in disk.wal.records] == [3, 4]

    def test_wipe_destroys_everything(self):
        disk = Disk()
        disk.wal.append(WalRecord("accept", 1, "x"))
        disk.install_snapshot(Snapshot(upto=1, payload={}, size_bytes=10))
        disk.wipe()
        assert len(disk.wal) == 0
        assert disk.wal.bytes_written == 0
        assert disk.snapshot is None
        assert disk.wipes == 1


class TestWalWriterFsync:
    def test_each_record_gets_its_own_sync(self):
        server, disk = FakeServer(), Disk()
        writer = WalWriter(server, disk, "fsync")
        done = []
        writer.persist(WalRecord("a", 1, "x"), then=lambda: done.append(1))
        writer.persist(WalRecord("a", 2, "y"), then=lambda: done.append(2))
        assert len(server.jobs) == 2
        assert writer.pending == 2
        server.drain()
        assert done == [1, 2]
        assert disk.fsyncs == 2
        assert len(disk.wal) == 2
        assert writer.pending == 0

    def test_sync_cost_covers_record_size(self):
        server, disk = FakeServer(), Disk()
        writer = WalWriter(server, disk, "fsync")
        writer.persist(WalRecord("a", 1, "x", size_bytes=1000))
        cost, _, _ = server.jobs[0]
        assert cost == pytest.approx(disk.profile.sync_cost(1000))


class TestWalWriterGroup:
    def test_records_coalesce_behind_one_outstanding_sync(self):
        server, disk = FakeServer(), Disk()
        writer = WalWriter(server, disk, "group")
        done = []
        writer.persist(WalRecord("a", 1, "x"), then=lambda: done.append(1))
        # While the first sync is outstanding, later records wait...
        writer.persist(WalRecord("a", 2, "y"), then=lambda: done.append(2))
        writer.persist(WalRecord("a", 3, "z"), then=lambda: done.append(3))
        assert len(server.jobs) == 1
        server.run_one()
        assert done == [1]
        # ...and are then submitted as ONE coalesced sync.
        assert len(server.jobs) == 1
        cost, _, _ = server.jobs[0]
        assert cost == pytest.approx(disk.profile.sync_cost(2 * WAL_RECORD_BYTES))
        server.run_one()
        assert done == [1, 2, 3]
        assert disk.fsyncs == 2
        assert len(disk.wal) == 3

    def test_rejects_unknown_mode(self):
        with pytest.raises(SimulationError):
            WalWriter(FakeServer(), Disk(), "eventually")


class TestPowerFail:
    def test_inflight_records_are_lost(self):
        server, disk = FakeServer(), Disk()
        writer = WalWriter(server, disk, "group")
        done = []
        writer.persist(WalRecord("a", 1, "x"), then=lambda: done.append(1))
        writer.persist(WalRecord("a", 2, "y"), then=lambda: done.append(2))
        writer.power_fail()
        server.drain()  # the stale sync must be a no-op
        assert done == []
        assert len(disk.wal) == 0
        assert writer.pending == 0

    def test_writer_usable_after_power_fail(self):
        server, disk = FakeServer(), Disk()
        writer = WalWriter(server, disk, "group")
        writer.persist(WalRecord("a", 1, "x"))
        writer.power_fail()
        server.drain()
        done = []
        writer.persist(WalRecord("a", 2, "y"), then=lambda: done.append(2))
        server.drain()
        assert done == [2]
        assert [r.slot for r in disk.wal.records] == [2]
