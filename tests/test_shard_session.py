"""ShardedCluster routing + the Session surface over it.

The load-bearing test here is the golden parity check: a single-shard
ShardedCluster must be *byte-identical* to a plain Deployment — same
operation history, same virtual-clock reading — because shard 0 of a
1-shard layout derives the identical configuration and shares the event
loop mechanics of the unsharded runtime.
"""

import pytest

from repro.errors import ConfigError, PlacementError
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.session import SessionOptions
from repro.protocols.paxos import MultiPaxos
from repro.shard.cluster import ShardedCluster
from repro.shard.placement import ShardSpec
from repro.shard.session import ShardedSession


def drive_session(runtime):
    """Identical scripted workload against any Session provider."""
    runtime.run_for(0.3)
    session = runtime.new_session()
    out = []
    for i in range(10):
        out.append(session.put(f"key-{i}", f"value-{i}"))
    for i in range(10):
        out.append(session.get(f"key-{i}"))
    runtime.run_for(0.2)
    return out


def history_tuples(runtime):
    return [
        (op.client, op.op, op.key, op.value, op.output, op.invoked_at, op.returned_at)
        for op in runtime.history.operations
    ]


class TestSingleShardParity:
    def test_single_shard_cluster_is_byte_identical_to_deployment(self):
        plain = Deployment(Config.lan(3, 3, seed=11)).start(MultiPaxos)
        single = ShardedCluster(
            Config.lan(3, 3, seed=11, shards=ShardSpec(count=1))
        ).start(MultiPaxos)
        results_plain = drive_session(plain)
        results_single = drive_session(single)
        assert [r.value for r in results_plain] == [r.value for r in results_single]
        assert history_tuples(plain) == history_tuples(single)
        assert plain.now == single.now


class TestRouting:
    def test_commands_spread_over_all_groups_and_read_back(self):
        cluster = ShardedCluster(
            Config.lan(3, 3, seed=3, shards=ShardSpec(count=4, buckets=16))
        ).start(MultiPaxos)
        cluster.run_for(0.3)
        session = cluster.new_session()
        for i in range(40):
            assert session.put(f"k{i}", f"v{i}").ok
        touched = {cluster.shard_of(f"k{i}") for i in range(40)}
        assert touched == {0, 1, 2, 3}
        for i in range(40):
            assert session.get(f"k{i}").value == f"v{i}"
        ok, groups_ok = cluster.verify()
        assert ok and groups_ok

    def test_each_group_only_sees_its_own_keys(self):
        cluster = ShardedCluster(
            Config.lan(3, 3, seed=3, shards=ShardSpec(count=2, buckets=8))
        ).start(MultiPaxos)
        cluster.run_for(0.3)
        session = cluster.new_session()
        keys = [f"k{i}" for i in range(20)]
        for key in keys:
            session.put(key, key + "!")
        cluster.run_for(0.2)
        for key in keys:
            owner = cluster.shard_of(key)
            other = cluster.group(1 - owner)
            for replica in other.replicas.values():
                assert replica.store.read(key) is None

    def test_unknown_site_and_shard_are_actionable(self):
        cluster = ShardedCluster(
            Config.lan(3, 3, seed=3, shards=ShardSpec(count=2, buckets=8))
        ).start(MultiPaxos)
        with pytest.raises(ConfigError):
            cluster.new_client(site="nowhere")
        with pytest.raises(PlacementError, match="shard"):
            cluster.group(7)


class TestShardedSession:
    def test_new_session_returns_sharded_session_with_options(self):
        cluster = ShardedCluster(
            Config.lan(3, 3, seed=13, shards=ShardSpec(count=2, buckets=8))
        ).start(MultiPaxos)
        cluster.run_for(0.3)
        session = cluster.new_session(SessionOptions(max_wait=2.0))
        assert isinstance(session, ShardedSession)
        assert session.put("a", "1").ok

    def test_session_txn_commits_across_groups(self):
        cluster = ShardedCluster(
            Config.lan(3, 3, seed=13, shards=ShardSpec(count=4, buckets=16))
        ).start(MultiPaxos)
        cluster.run_for(0.3)
        session = cluster.new_session()
        keys = [f"t{i}" for i in range(6)]
        assert len({cluster.shard_of(k) for k in keys}) > 1  # genuinely cross-shard
        result = session.txn(writes={k: k.upper() for k in keys})
        assert result.ok
        for k in keys:
            assert session.get(k).value == k.upper()
        ok, groups_ok = cluster.verify()
        assert ok and groups_ok
