"""Unit and property tests for the quorum systems (paper section 4.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import QuorumError
from repro.paxi.ids import NodeID, grid_ids
from repro.paxi.quorum import (
    FastQuorum,
    GridQuorum,
    GroupQuorum,
    MajorityQuorum,
    ThresholdQuorum,
)

IDS9 = grid_ids(3, 3)
IDS5 = grid_ids(1, 5)


class TestMajority:
    def test_satisfied_at_majority(self):
        q = MajorityQuorum(IDS5)
        for nid in IDS5[:2]:
            q.ack(nid)
        assert not q.satisfied()
        q.ack(IDS5[2])
        assert q.satisfied()

    def test_size(self):
        assert MajorityQuorum(IDS9).size == 5
        assert MajorityQuorum(IDS5).size == 3

    def test_duplicate_acks_count_once(self):
        q = MajorityQuorum(IDS5)
        for _ in range(10):
            q.ack(IDS5[0])
        assert not q.satisfied()

    def test_foreign_vote_rejected(self):
        q = MajorityQuorum(IDS5)
        with pytest.raises(QuorumError):
            q.ack(NodeID(9, 9))

    def test_reset(self):
        q = MajorityQuorum(IDS5)
        for nid in IDS5[:3]:
            q.ack(nid)
        assert q.satisfied()
        q.reset()
        assert not q.satisfied()

    def test_defeated_when_majority_nacks(self):
        q = MajorityQuorum(IDS5)
        for nid in IDS5[:3]:
            q.nack(nid)
        assert q.defeated()

    def test_not_defeated_with_minority_nacks(self):
        q = MajorityQuorum(IDS5)
        q.nack(IDS5[0])
        assert not q.defeated()

    def test_empty_quorum_rejected(self):
        with pytest.raises(QuorumError):
            MajorityQuorum([])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(QuorumError):
            MajorityQuorum([IDS5[0], IDS5[0]])


class TestThreshold:
    def test_fpaxos_pairing(self):
        """FPaxos at N=9 with |q2|=3: q1 must be 7 so they intersect."""
        q2 = ThresholdQuorum(IDS9, 3)
        q1 = ThresholdQuorum(IDS9, 9 - 3 + 1)
        assert q1.size + q2.size == 10  # > N guarantees intersection

    def test_threshold_bounds(self):
        with pytest.raises(QuorumError):
            ThresholdQuorum(IDS5, 0)
        with pytest.raises(QuorumError):
            ThresholdQuorum(IDS5, 6)

    def test_satisfied_exactly_at_threshold(self):
        q = ThresholdQuorum(IDS5, 2)
        q.ack(IDS5[0])
        assert not q.satisfied()
        q.ack(IDS5[4])
        assert q.satisfied()


class TestFast:
    def test_default_is_three_quarters(self):
        """Paper section 2: fast quorum is 'approximately 3/4ths of all
        nodes'."""
        assert FastQuorum(IDS9).size == 7  # ceil(27/4)
        assert FastQuorum(IDS5).size == 4  # ceil(15/4)

    def test_explicit_size(self):
        assert FastQuorum(IDS5, size=3).size == 3

    def test_size_bounds(self):
        with pytest.raises(QuorumError):
            FastQuorum(IDS5, size=6)


class TestGrid:
    def test_phase2_fz0_is_zone_local(self):
        """fz=0, f=1 on a 3x3 grid: 2 acks in one zone suffice."""
        q = GridQuorum(IDS9, phase=2, f=1, fz=0)
        q.ack(NodeID(1, 1))
        assert not q.satisfied()
        q.ack(NodeID(1, 2))
        assert q.satisfied()

    def test_phase2_acks_across_zones_do_not_count(self):
        q = GridQuorum(IDS9, phase=2, f=1, fz=0)
        q.ack(NodeID(1, 1))
        q.ack(NodeID(2, 1))
        q.ack(NodeID(3, 1))
        assert not q.satisfied()  # one ack in each zone completes none

    def test_phase2_fz1_needs_two_zones(self):
        q = GridQuorum(IDS9, phase=2, f=1, fz=1)
        q.ack(NodeID(1, 1))
        q.ack(NodeID(1, 2))
        assert not q.satisfied()
        q.ack(NodeID(2, 1))
        q.ack(NodeID(2, 3))
        assert q.satisfied()

    def test_phase1_fz0_needs_all_zones(self):
        q = GridQuorum(IDS9, phase=1, f=1, fz=0)
        for zone in (1, 2):
            q.ack(NodeID(zone, 1))
            q.ack(NodeID(zone, 2))
        assert not q.satisfied()
        q.ack(NodeID(3, 2))
        q.ack(NodeID(3, 3))
        assert q.satisfied()

    def test_size_hints(self):
        assert GridQuorum(IDS9, phase=2, f=1, fz=0).size == 2
        assert GridQuorum(IDS9, phase=1, f=1, fz=0).size == 6

    def test_invalid_phase(self):
        with pytest.raises(QuorumError):
            GridQuorum(IDS9, phase=3)

    def test_infeasible_parameters(self):
        with pytest.raises(QuorumError):
            GridQuorum(IDS9, phase=1, f=3, fz=0)  # f >= nodes per zone
        with pytest.raises(QuorumError):
            GridQuorum(IDS9, phase=2, f=1, fz=3)  # fz+1 > zones

    def test_preferred_members_anchor_zone_first(self):
        q = GridQuorum(IDS9, phase=2, f=1, fz=1)
        members = q.preferred_members(anchor_zone=2, topology_order=[2, 1, 3])
        assert members[0].zone == 2
        zones = {m.zone for m in members}
        assert zones == {2, 1}
        assert len(members) == 4


@given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=3))
def test_grid_q1_q2_always_intersect(f, fz):
    """Safety property: any satisfied phase-1 ack set intersects any
    satisfied phase-2 ack set, for every feasible (f, fz) on grids."""
    for zones, per_zone in ((3, 3), (5, 2), (2, 5), (4, 4)):
        ids = grid_ids(zones, per_zone)
        if f >= per_zone or fz >= zones:
            continue
        q1 = GridQuorum(ids, phase=1, f=f, fz=fz)
        q2 = GridQuorum(ids, phase=2, f=f, fz=fz)
        # Adversarial minimal quorums: q1 takes the FIRST (R-f) nodes of the
        # FIRST (Z-fz) zones; q2 takes the LAST (f+1) nodes of the LAST
        # (fz+1) zones; they must still share a node by counting.
        q1_set = {
            NodeID(z, n)
            for z in range(1, zones - fz + 1)
            for n in range(1, per_zone - f + 1)
        }
        q2_set = {
            NodeID(z, n)
            for z in range(zones - fz, zones + 1)
            for n in range(per_zone - f, per_zone + 1)
        }
        for nid in q1_set:
            q1.ack(nid)
        for nid in q2_set:
            q2.ack(nid)
        assert q1.satisfied() and q2.satisfied()
        assert q1_set & q2_set, f"disjoint quorums for f={f} fz={fz} {zones}x{per_zone}"


class TestGroup:
    def test_majority_within_group(self):
        group = [NodeID(2, n) for n in range(1, 4)]
        q = GroupQuorum(group)
        q.ack(group[0])
        assert not q.satisfied()
        q.ack(group[2])
        assert q.satisfied()
        assert q.size == 2
