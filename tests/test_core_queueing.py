"""Unit and property tests for the Table-1 queueing models."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.queueing import GG1, MD1, MG1, MM1, ALL_MODELS, make_model
from repro.errors import ModelError

MU = 8000.0


class TestMM1:
    def test_textbook_value(self):
        # M/M/1 with rho = 0.5: Wq = rho^2/(lambda (1-rho)) = 0.25/(4000*0.5)
        q = MM1(MU)
        assert q.wait_time(4000.0) == pytest.approx(0.25 / (4000.0 * 0.5))

    def test_saturated_is_infinite(self):
        assert MM1(MU).wait_time(MU) == math.inf
        assert MM1(MU).wait_time(MU * 2) == math.inf

    def test_sojourn_adds_service(self):
        q = MM1(MU)
        assert q.sojourn_time(4000.0) == pytest.approx(q.wait_time(4000.0) + 1 / MU)


class TestMD1:
    def test_md1_is_half_of_mm1(self):
        """Classic result: deterministic service halves the M/M/1 wait."""
        lam = 6000.0
        assert MD1(MU).wait_time(lam) == pytest.approx(MM1(MU).wait_time(lam) / 2)

    def test_from_service_time(self):
        q = MD1.from_service_time(125e-6)
        assert q.service_rate == pytest.approx(8000.0)

    def test_from_service_time_rejects_nonpositive(self):
        with pytest.raises(ModelError):
            MD1.from_service_time(0.0)


class TestMG1:
    def test_zero_variance_reduces_to_md1(self):
        lam = 5000.0
        assert MG1(MU, service_sigma=0.0).wait_time(lam) == pytest.approx(
            MD1(MU).wait_time(lam)
        )

    def test_exponential_variance_reduces_to_mm1(self):
        # For exponential service, sigma = 1/mu, and M/G/1 == M/M/1.
        lam = 5000.0
        assert MG1(MU, service_sigma=1 / MU).wait_time(lam) == pytest.approx(
            MM1(MU).wait_time(lam)
        )

    def test_more_variance_more_wait(self):
        lam = 5000.0
        low = MG1(MU, service_sigma=0.5 / MU).wait_time(lam)
        high = MG1(MU, service_sigma=2.0 / MU).wait_time(lam)
        assert high > low


class TestGG1:
    def test_negative_cv_rejected(self):
        with pytest.raises(ModelError):
            GG1(MU, ca2=-1.0)

    def test_finite_below_saturation(self):
        assert GG1(MU, 1.0, 1.0).wait_time(7000.0) < math.inf

    def test_saturated_is_infinite(self):
        assert GG1(MU).wait_time(MU) == math.inf


class TestFactory:
    def test_all_four_models(self):
        for name in ALL_MODELS:
            model = make_model(name, service_time=125e-6, service_sigma=20e-6)
            assert model.name == name
            assert model.service_rate == pytest.approx(8000.0)

    def test_unknown_name_rejected(self):
        with pytest.raises(ModelError):
            make_model("M/X/1", 1e-3)

    def test_nonpositive_service_time_rejected(self):
        with pytest.raises(ModelError):
            make_model("M/M/1", 0.0)


class TestValidation:
    @pytest.mark.parametrize("model", [MM1(MU), MD1(MU), MG1(MU, 1e-5), GG1(MU)])
    def test_nonpositive_arrival_rejected(self, model):
        with pytest.raises(ModelError):
            model.wait_time(0.0)

    def test_utilization(self):
        assert MD1(MU).utilization(4000.0) == pytest.approx(0.5)


@given(
    st.floats(min_value=0.01, max_value=0.97),
    st.floats(min_value=0.01, max_value=0.97),
)
def test_wait_time_monotone_in_utilization(rho_a, rho_b):
    """Property: every model's wait is nondecreasing in utilization."""
    lo, hi = sorted((rho_a, rho_b))
    for model in (MM1(MU), MD1(MU), MG1(MU, 1e-5), GG1(MU, 1.0, 1.0)):
        assert model.wait_time(hi * MU) >= model.wait_time(lo * MU) - 1e-15


@given(st.floats(min_value=0.01, max_value=0.95))
def test_md1_never_waits_longer_than_mm1(rho):
    """Property: deterministic service always beats exponential service."""
    lam = rho * MU
    assert MD1(MU).wait_time(lam) <= MM1(MU).wait_time(lam) + 1e-15


@given(st.floats(min_value=0.001, max_value=0.2))
def test_light_traffic_wait_is_small(rho):
    """Property: at low utilization, queue wait is far below service time."""
    lam = rho * MU
    assert MD1(MU).wait_time(lam) < 1.0 / MU
