"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.bench.benchmarker import BenchmarkResult, ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.checkers.consensus import check_deployment
from repro.checkers.linearizability import check_history


def run_protocol(
    factory,
    config: Config,
    spec: WorkloadSpec | dict | None = None,
    concurrency: int = 4,
    duration: float = 0.2,
    warmup: float = 0.02,
    settle: float = 0.05,
    sites: list[str] | None = None,
) -> tuple[Deployment, BenchmarkResult]:
    """Start a deployment, drive a short workload, return both."""
    if spec is None:
        spec = WorkloadSpec(keys=50)
    deployment = Deployment(config).start(factory)
    bench = ClosedLoopBenchmark(deployment, spec, concurrency, sites)
    result = bench.run(duration, warmup, settle)
    return deployment, result


def assert_correct(deployment: Deployment) -> None:
    """Both paper checkers must pass on the deployment's history."""
    linearizable = check_history(deployment.history.snapshot())
    assert linearizable.ok, [a.detail for a in linearizable.anomalies[:3]]
    consensus = check_deployment(deployment)
    assert consensus.ok, consensus.violations[:3]


@pytest.fixture
def lan9() -> Config:
    return Config.lan(zones=3, nodes_per_zone=3, seed=42)


@pytest.fixture
def wan3x3() -> Config:
    return Config.wan(("VA", "OH", "CA"), 3, seed=42)
