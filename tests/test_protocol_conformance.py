"""Protocol-conformance battery: semantic guarantees every strongly
consistent protocol must provide, run against all eight implementations."""

import pytest

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.message import Command
from repro.protocols import PROTOCOLS

from tests.conftest import assert_correct

ALL = sorted(PROTOCOLS)


@pytest.mark.parametrize("name", ALL)
def test_single_client_reads_its_own_writes(name):
    """A lone client alternating put/get must always read its last write,
    under every protocol (strong consistency's most basic face)."""
    dep = Deployment(Config.lan(3, 3, seed=201)).start(PROTOCOLS[name])
    client = dep.new_client()
    dep.run_for(0.2)
    observed = []
    for i in range(8):
        client.invoke(Command.put("k", f"v{i}"))
        dep.run_for(0.3)
        client.invoke(Command.get("k"), on_done=lambda r, l: observed.append(r.value))
        dep.run_for(0.3)
    assert observed == [f"v{i}" for i in range(8)], name


@pytest.mark.parametrize("name", ALL)
def test_write_visible_from_every_entry_point(name):
    """A committed write must be readable through any replica."""
    dep = Deployment(Config.lan(3, 3, seed=202)).start(PROTOCOLS[name])
    writer = dep.new_client()
    dep.run_for(0.2)
    writer.invoke(Command.put("shared", "committed"))
    dep.run_for(0.5)
    observed = []
    for target in dep.config.node_ids:
        reader = dep.new_client()
        reader.invoke(Command.get("shared"), target=target, on_done=lambda r, l: observed.append(r.value))
        dep.run_for(0.5)
    assert observed == ["committed"] * 9, name


@pytest.mark.parametrize("name", ALL)
def test_five_region_wan_deployment(name):
    """Every protocol must run correctly on the paper's full 5-region
    topology (one node per region)."""
    cfg = Config.wan(("VA", "OH", "CA", "IR", "JP"), 1, seed=203)
    dep = Deployment(cfg).start(PROTOCOLS[name])
    bench = ClosedLoopBenchmark(dep, WorkloadSpec(keys=20), concurrency=5)
    result = bench.run(duration=2.0, warmup=0.5, settle=1.0)
    assert result.completed > 20, name
    dep.run_for(1.0)
    assert_correct(dep)


@pytest.mark.parametrize("name", ALL)
def test_interleaved_writers_serialize(name):
    """Two clients hammering one key: the final state must be the last
    committed write, and every replica must agree on the write order."""
    dep = Deployment(Config.lan(3, 3, seed=204)).start(PROTOCOLS[name])
    a = dep.new_client()
    b = dep.new_client()
    dep.run_for(0.2)
    for i in range(5):
        a.invoke(Command.put("k", f"a{i}"))
        b.invoke(Command.put("k", f"b{i}"))
        dep.run_for(0.3)
    dep.run_for(0.5)
    histories = [r.store.history("k") for r in dep.replicas.values()]
    longest = max(histories, key=len)
    assert len(longest) == 10
    for h in histories:
        assert h == longest[: len(h)], name
    assert_correct(dep)
