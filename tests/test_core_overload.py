"""Tests for the analytic overload models (finite queues, retry storms)."""

import math

import pytest

from repro.core.overload import FiniteQueueModel, RetryAmplificationModel
from repro.errors import ModelError


class TestFiniteQueue:
    def test_loss_negligible_far_below_knee(self):
        model = FiniteQueueModel(mu=1000.0, capacity=32)
        assert model.loss(100.0) < 1e-9

    def test_loss_at_exact_saturation_is_one_over_k_plus_one(self):
        model = FiniteQueueModel(mu=1000.0, capacity=10)
        assert model.loss(1000.0) == pytest.approx(1.0 / 11.0)

    def test_loss_monotone_in_offered_load(self):
        model = FiniteQueueModel(mu=1000.0, capacity=16)
        losses = [model.loss(rate) for rate in (200, 600, 1000, 1500, 3000)]
        assert losses == sorted(losses)
        assert all(0.0 <= p < 1.0 for p in losses)

    def test_goodput_bounded_by_capacity_and_by_offered(self):
        model = FiniteQueueModel(mu=1000.0, capacity=32)
        for rate in (100.0, 900.0, 1000.0, 2000.0, 10000.0):
            goodput = model.goodput(rate)
            assert goodput <= min(rate, 1000.0) + 1e-9

    def test_goodput_plateaus_past_knee(self):
        # The graceful-degradation shape: 2x overload loses almost nothing.
        model = FiniteQueueModel(mu=1000.0, capacity=32)
        assert model.goodput(2000.0) > 0.99 * 1000.0

    def test_deep_queue_converges_to_infinite_queue_below_knee(self):
        shallow = FiniteQueueModel(mu=1000.0, capacity=4)
        deep = FiniteQueueModel(mu=1000.0, capacity=512)
        assert deep.loss(900.0) < shallow.loss(900.0)
        assert deep.loss(900.0) < 1e-12

    def test_curve_helper_matches_pointwise(self):
        model = FiniteQueueModel(mu=500.0, capacity=8)
        rates = [100.0, 500.0, 900.0]
        assert model.curve(rates) == [(r, model.goodput(r)) for r in rates]

    def test_validation(self):
        with pytest.raises(ModelError):
            FiniteQueueModel(mu=0.0, capacity=8)
        with pytest.raises(ModelError):
            FiniteQueueModel(mu=100.0, capacity=0)
        with pytest.raises(ModelError):
            FiniteQueueModel(mu=100.0, capacity=8).loss(0.0)


class TestRetryAmplification:
    def test_expected_attempts_limits(self):
        model = RetryAmplificationModel(mu=1000.0, max_attempts=5)
        assert model.expected_attempts(0.0) == 1.0
        assert model.expected_attempts(1.0) == 5.0
        # Geometric series: p=0.5, k=5 -> (1 - 1/32) / 0.5
        assert model.expected_attempts(0.5) == pytest.approx((1 - 0.5**5) / 0.5)

    def test_no_amplification_below_knee(self):
        model = RetryAmplificationModel(mu=1000.0, max_attempts=10)
        assert model.effective_attempt_rate(500.0) == pytest.approx(500.0)
        assert model.goodput(500.0) == pytest.approx(500.0)

    def test_amplification_inflates_past_knee(self):
        model = RetryAmplificationModel(mu=1000.0, max_attempts=10)
        x = model.effective_attempt_rate(1500.0)
        assert x > 1500.0  # retries add attempts...
        assert x <= 10 * 1500.0 + 1e-6  # ...bounded by k per request

    def test_goodput_collapses_under_amplification(self):
        # Offered load slightly past the knee with aggressive retries:
        # goodput lands well below the knee, the metastable signature.
        model = RetryAmplificationModel(mu=1000.0, max_attempts=100)
        assert model.goodput(1200.0) < 500.0

    def test_hysteresis_bound(self):
        model = RetryAmplificationModel(mu=1000.0, max_attempts=50)
        assert model.hysteresis_bound() == pytest.approx(20.0)
        assert model.is_metastable(500.0)  # bound < 500 < mu
        assert not model.is_metastable(10.0)  # below the bound: recovers
        assert not model.is_metastable(2000.0)  # above mu: plain overload

    def test_single_attempt_cannot_amplify(self):
        model = RetryAmplificationModel(mu=1000.0, max_attempts=1)
        assert model.effective_attempt_rate(5000.0) == pytest.approx(5000.0)
        assert model.hysteresis_bound() == pytest.approx(1000.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            RetryAmplificationModel(mu=-1.0, max_attempts=3)
        with pytest.raises(ModelError):
            RetryAmplificationModel(mu=100.0, max_attempts=0)
        with pytest.raises(ModelError):
            RetryAmplificationModel(mu=100.0, max_attempts=3).expected_attempts(1.5)
        with pytest.raises(ModelError):
            RetryAmplificationModel(mu=100.0, max_attempts=3).effective_attempt_rate(0.0)

    def test_failure_probability_fluid_limit(self):
        model = RetryAmplificationModel(mu=1000.0, max_attempts=3)
        assert model.failure_probability(500.0) == 0.0
        assert model.failure_probability(2000.0) == pytest.approx(0.5)
        assert model.failure_probability(-5.0) == 0.0
