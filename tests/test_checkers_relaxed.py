"""Tests for the relaxed-consistency checkers and model (section-7 work)."""

import math

import pytest

from repro.checkers.staleness import (
    check_bounded_staleness,
    check_session,
    observed_staleness,
)
from repro.core.relaxed import RelaxedPaxosModel, StalenessBound
from repro.core.protocol_models import PaxosModel
from repro.core.topology import aws_wan, lan
from repro.errors import ModelError
from repro.paxi.history import Operation


def w(value, t0, t1, client="c", key="k"):
    return Operation(client, "PUT", key, value, value, t0, t1)


def r(output, t0, t1, client="c", key="k"):
    return Operation(client, "GET", key, None, output, t0, t1)


class TestObservedStaleness:
    def test_fresh_read_is_zero(self):
        writes = [w("a", 0, 1)]
        assert observed_staleness(r("a", 2, 3), writes) == 0.0

    def test_stale_read_measures_overwrite_age(self):
        writes = [w("a", 0, 1), w("b", 2, 3)]
        # "b" completed at t=3; the read of "a" began at t=10.
        assert observed_staleness(r("a", 10, 11), writes) == pytest.approx(7.0)

    def test_multiple_overwrites_count_from_the_first(self):
        # "a" stopped being current when "b" completed at t=3, so a read at
        # t=10 returned a value 7 seconds out of date (a bound of 5 s would
        # not have permitted it, even though "c" is only 5 s old).
        writes = [w("a", 0, 1), w("b", 2, 3), w("c", 4, 5)]
        assert observed_staleness(r("a", 10, 11), writes) == pytest.approx(7.0)

    def test_initial_read_staleness(self):
        writes = [w("a", 0, 1)]
        assert observed_staleness(r(None, 4, 5), writes) == pytest.approx(3.0)

    def test_concurrent_write_not_counted(self):
        writes = [w("a", 0, 1), w("b", 2, 20)]  # still in flight at read
        assert observed_staleness(r("a", 10, 11), writes) == 0.0

    def test_rejects_writes(self):
        with pytest.raises(ValueError):
            observed_staleness(w("a", 0, 1), [])


class TestBoundedStaleness:
    def test_zero_delta_equals_linearizability_staleness(self):
        history = [w("a", 0, 1), w("b", 2, 3), r("a", 4, 5)]
        assert not check_bounded_staleness(history, 0.0).ok
        assert check_bounded_staleness(history, 2.0).ok  # 1s stale <= 2s

    def test_max_staleness_reported(self):
        history = [w("a", 0, 1), w("b", 2, 3), r("a", 10, 11)]
        result = check_bounded_staleness(history, 100.0)
        assert result.ok
        assert result.max_staleness == pytest.approx(7.0)

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            check_bounded_staleness([], -1.0)

    def test_keys_independent(self):
        history = [
            w("a", 0, 1, key="x"),
            w("b", 2, 3, key="y"),
            r("a", 4, 5, key="x"),  # fresh for x: no x-write intervened
        ]
        assert check_bounded_staleness(history, 0.0).ok


class TestSession:
    def test_read_your_writes_violation(self):
        history = [
            w("v1", 0, 1, client="c1"),
            w("v2", 2, 3, client="c1"),
            r("v1", 4, 5, client="c1"),  # c1 reads its own older write
        ]
        result = check_session(history)
        assert not result.ok
        assert result.session_violations[0].kind == "read-your-writes"

    def test_read_none_after_own_write(self):
        history = [w("v1", 0, 1, client="c1"), r(None, 2, 3, client="c1")]
        assert not check_session(history).ok

    def test_other_clients_stale_reads_allowed(self):
        # c2 never wrote: reading the older value is session-legal.
        history = [
            w("v1", 0, 1, client="c1"),
            w("v2", 2, 3, client="c1"),
            r("v1", 4, 5, client="c2"),
        ]
        assert check_session(history).ok

    def test_monotonic_reads_violation(self):
        history = [
            w("v1", 0, 1, client="c1"),
            w("v2", 2, 3, client="c1"),
            r("v2", 4, 5, client="c2"),
            r("v1", 6, 7, client="c2"),  # goes backwards
        ]
        result = check_session(history)
        assert not result.ok
        assert result.session_violations[0].kind == "monotonic-reads"

    def test_monotonic_reads_forward_ok(self):
        history = [
            w("v1", 0, 1, client="c1"),
            w("v2", 2, 3, client="c1"),
            r("v1", 4, 5, client="c2"),
            r("v2", 6, 7, client="c2"),
        ]
        assert check_session(history).ok

    def test_own_fresh_read_ok(self):
        history = [w("v1", 0, 1, client="c1"), r("v1", 2, 3, client="c1")]
        assert check_session(history).ok


class TestRelaxedModel:
    def test_capacity_scales_with_write_ratio(self):
        topo = lan(9)
        strong = PaxosModel(topo).max_throughput()
        half = RelaxedPaxosModel(topo, write_ratio=0.5).max_throughput()
        tenth = RelaxedPaxosModel(topo, write_ratio=0.1).max_throughput()
        assert half == pytest.approx(strong * 2, rel=0.01)
        assert tenth == pytest.approx(strong * 10, rel=0.01)

    def test_read_latency_is_local(self):
        model = RelaxedPaxosModel(aws_wan(("VA", "OH", "CA"), 3), leader=3)
        assert model.read_latency_ms() < 1.0

    def test_mixed_latency_below_strong(self):
        topo = aws_wan(("VA", "OH", "CA"), 3)
        strong = PaxosModel(topo, leader=3).latency_ms(100)
        relaxed = RelaxedPaxosModel(topo, write_ratio=0.5, leader=3).latency_ms(100)
        assert relaxed < strong

    def test_staleness_bound_components(self):
        bound = StalenessBound(heartbeat_interval=0.02, one_way_delay=0.026)
        assert bound.delta == pytest.approx(0.046)

    def test_bound_grows_with_distance(self):
        model = RelaxedPaxosModel(aws_wan(("VA", "OH", "CA"), 3), leader=3)
        assert (
            model.staleness_bound("CA").delta
            > model.staleness_bound("VA").delta
            > model.staleness_bound("OH").delta
        )

    def test_write_ratio_validated(self):
        with pytest.raises(ModelError):
            RelaxedPaxosModel(lan(9), write_ratio=0.0)

    def test_saturated_latency_infinite(self):
        model = RelaxedPaxosModel(lan(9), write_ratio=0.5)
        assert math.isinf(model.latency_ms(model.max_throughput() * 1.1))
