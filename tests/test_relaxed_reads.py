"""Integration tests for relaxed/session reads in MultiPaxos."""

import pytest

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.checkers.consensus import check_deployment
from repro.checkers.linearizability import check_history
from repro.checkers.staleness import check_bounded_staleness, check_session
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import Command
from repro.protocols.paxos import MultiPaxos

REGIONS = ("VA", "OH", "CA")


def _deployment(seed=9, **params):
    cfg = Config.wan(REGIONS, 3, seed=seed, relaxed_reads=True, leader=NodeID(2, 1), **params)
    return Deployment(cfg).start(MultiPaxos)


def _bench(deployment, session: bool, duration=1.0, concurrency=9):
    bench = ClosedLoopBenchmark(deployment, WorkloadSpec(keys=3, write_ratio=0.5), concurrency)
    for client, _generator in bench._drivers:
        client.local_reads = True
        client.session_reads = session
    return bench.run(duration=duration, warmup=0.3, settle=0.5)


def test_relaxed_reads_are_local():
    dep = _deployment()
    _bench(dep, session=False)
    reads = [op.latency * 1e3 for op in dep.history.operations if op.is_read]
    assert reads
    assert sorted(reads)[len(reads) // 2] < 1.0  # median read ~ local RTT


def test_relaxed_reads_show_bounded_staleness():
    dep = _deployment()
    _bench(dep, session=False)
    ops = dep.history.snapshot()
    assert not check_history(ops).ok  # no longer linearizable...
    unbounded = check_bounded_staleness(ops, delta=float("inf"))
    assert unbounded.max_staleness > 0  # ...and provably stale...
    # ...but within the model bound: heartbeat (20 ms) + one-way CA-OH
    # (26 ms) + queue margin.
    assert check_bounded_staleness(ops, delta=0.055).ok
    assert check_deployment(dep).ok  # consensus untouched


def test_session_tokens_restore_session_guarantees():
    dep_plain = _deployment(seed=10)
    _bench(dep_plain, session=False)
    plain = check_session(dep_plain.history.snapshot())

    dep_session = _deployment(seed=10)
    _bench(dep_session, session=True)
    tokened = check_session(dep_session.history.snapshot())

    assert not plain.ok  # hot keys + local reads violate RYW eventually
    assert tokened.ok  # version tokens fix it


def test_session_read_waits_for_own_write():
    dep = _deployment(seed=11)
    client = dep.new_client(site="CA")
    client.local_reads = True
    client.session_reads = True
    dep.run_for(0.5)
    seen = []
    client.invoke(Command.put("k", "mine"))
    dep.run_for(0.3)
    client.invoke(Command.get("k"), on_done=lambda r, l: seen.append(r.value))
    dep.run_for(0.5)
    assert seen == ["mine"]


def test_strong_reads_unaffected_by_flag_absence():
    """Without relaxed_reads, GETs still run through consensus."""
    cfg = Config.wan(REGIONS, 3, seed=12, leader=NodeID(2, 1))
    dep = Deployment(cfg).start(MultiPaxos)
    bench = ClosedLoopBenchmark(dep, WorkloadSpec(keys=3), concurrency=6)
    bench.run(duration=1.0, warmup=0.3, settle=0.5)
    assert check_history(dep.history.snapshot()).ok
    reads = [op.latency * 1e3 for op in dep.history.operations if op.is_read]
    assert sorted(reads)[len(reads) // 2] > 5  # consensus-priced reads


def test_relaxed_capacity_gain():
    """Reads off the leader's queue: measured capacity roughly doubles at
    a 50% write ratio (model: mu / W)."""

    def saturate(relaxed):
        cfg = Config.lan(3, 3, seed=13, relaxed_reads=relaxed)
        dep = Deployment(cfg).start(MultiPaxos)
        bench = ClosedLoopBenchmark(dep, WorkloadSpec(keys=500, write_ratio=0.5), 128)
        for client, _generator in bench._drivers:
            client.local_reads = relaxed
        return bench.run(duration=0.25, warmup=0.05, settle=0.05).throughput

    strong = saturate(False)
    relaxed = saturate(True)
    assert relaxed > 1.5 * strong
