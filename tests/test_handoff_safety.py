"""Adversarial validation of planned leader handoff.

The handoff protocol's safety argument has two load-bearing steps: the
old leader must (a) release its own lease *before* soliciting the
successor's campaign and (b) actually stop serving.  A planted
implementation that skips both — it hands the ballot over but keeps its
lease and keeps answering lease reads — must be caught by the
linearizability checker, and the correct implementation must survive the
identical schedule.  A seeded Nemesis soak over the gray-failure kinds
(``fail_slow``, ``partial_partition``) then pins the detector + handoff
machinery against randomized injection.
"""

import pytest

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.nemesis import Nemesis
from repro.bench.workload import WorkloadSpec
from repro.checkers.consensus import check_deployment
from repro.checkers.linearizability import check_history, check_history_graph
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.session import SessionOptions
from repro.protocols.paxos import HandoffRequest, MultiPaxos
from repro.protocols.raft import Raft

OLD_LEADER = NodeID(1, 1)
HANDOFF_PARAMS = dict(lease_duration=0.2, max_clock_skew=0.005, detector=True)


class BrokenHandoffPaxos(MultiPaxos):
    """Hands the ballot to the successor but 'forgets' to release its own
    lease or step down: the split-brain bug the release-before-solicit
    ordering in ``_complete_handoff`` exists to prevent."""

    def _complete_handoff(self):
        from repro.protocols.paxos import Handoff

        successor = self._handoff_successor
        self._handing_off = False
        self._handoff_successor = None
        if successor is None or not self.active:
            return
        self.handoffs_completed += 1
        self.send(
            successor,
            Handoff(ballot=self.ballot, frontier=self.log.next_slot - 1),
        )
        # BUG: no lease release, no active=False -- this node keeps
        # serving lease reads while the successor takes over.


def _handoff_scenario(factory):
    """Trigger a planned handoff, then immediately partition the old
    leader (with a lease reader) away from the majority and commit a new
    value on the other side.  A correct old leader released its lease at
    the transfer point; a broken one serves the stale store."""
    dep = Deployment(Config.lan(1, 5, seed=13, **HANDOFF_PARAMS)).start(factory)
    writer = dep.new_session(max_wait=1.0)
    reader = dep.new_session(max_wait=1.0, consistency="lease")
    assert writer.put("k", "v1").ok
    dep.run_for(0.3)  # leader, lease, and health monitors established
    leader = dep.replicas[OLD_LEADER]
    assert leader.active
    # Two followers report the leader degraded (the detector's verdict,
    # delivered by hand so the schedule is exact and load-free).
    for peer in [r.id for r in dep.replicas.values() if r.id != OLD_LEADER][:2]:
        leader.on_handoff_request(peer, HandoffRequest(ballot=leader.ballot))
    dep.run_for(0.1)  # handoff completes; the successor campaigns
    new_leader = next(
        r.id for r in dep.replicas.values() if r.active and r.id != OLD_LEADER
    )
    everyone = set(dep.config.node_ids) | {c.address for c in dep.clients}
    minority = {OLD_LEADER, reader.client.address}
    dep.cluster.partition([minority, everyone - minority], 3.0, at=dep.now)
    assert writer.put("k", "v2", opts=SessionOptions(target=new_leader)).ok
    read = reader.get("k", opts=SessionOptions(target=OLD_LEADER))
    return dep, read


def test_linearizability_checker_flags_broken_handoff():
    dep, read = _handoff_scenario(BrokenHandoffPaxos)
    # The un-deposed old leader happily serves its stale store.
    assert read.ok and read.value == "v1" and read.read_mode == "lease"
    result = check_history(dep.history.snapshot())
    assert not result.ok
    assert "stale-read" in {a.kind for a in result.anomalies}
    assert not check_history_graph(dep.history.operations)


def test_correct_handoff_survives_the_same_schedule():
    """Same schedule, real completion: the old leader's lease died before
    the Handoff left, so the partitioned read cannot be served locally —
    it blocks instead of lying."""
    dep, read = _handoff_scenario(MultiPaxos)
    assert not read.ok or read.value == "v2"
    assert check_history(dep.history.snapshot()).ok
    assert dep.replicas[OLD_LEADER].handoffs_completed == 1


@pytest.mark.parametrize("factory", [MultiPaxos, Raft], ids=["paxos", "raft"])
@pytest.mark.parametrize("seed", [5, 23])
def test_detector_handoff_survives_grayfail_nemesis(factory, seed):
    """Seeded gray-failure chaos: fail-slow degradations and partial
    partitions against a detector-armed cluster must never cost safety,
    whether or not a handoff fires along the way."""
    dep = Deployment(
        Config.lan(1, 5, seed=seed, detector=True, lease_duration=0.2,
                   max_clock_skew=0.005)
    ).start(factory)
    nemesis = Nemesis(
        seed=seed,
        horizon=1.0,
        events=4,
        kinds=("fail_slow", "partial_partition"),
        max_partition_size=2,
    )
    events = nemesis.unleash(dep, at=0.2)
    assert events
    bench = ClosedLoopBenchmark(
        dep, WorkloadSpec(keys=15), concurrency=4, retry_timeout=0.4
    )
    result = bench.run(duration=1.6, warmup=0.0, settle=0.05)
    dep.run_for(2.0)
    assert result.completed > 0
    assert check_history(dep.history.snapshot()).ok
    assert check_deployment(dep).ok
