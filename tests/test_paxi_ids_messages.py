"""Unit tests for node IDs, commands, and message metadata."""

import pytest

from repro.errors import ConfigError
from repro.paxi.ids import NodeID, grid_ids
from repro.paxi.message import ClientReply, ClientRequest, Command, Message


class TestNodeID:
    def test_string_form(self):
        assert str(NodeID(2, 3)) == "2.3"

    def test_parse_roundtrip(self):
        assert NodeID.parse("4.7") == NodeID(4, 7)

    @pytest.mark.parametrize("text", ["", "3", "a.b", "1.2.3x"])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ConfigError):
            NodeID.parse(text)

    def test_ordering_is_zone_major(self):
        assert NodeID(1, 9) < NodeID(2, 1)


class TestGridIds:
    def test_shape(self):
        ids = grid_ids(3, 3)
        assert len(ids) == 9
        assert ids[0] == NodeID(1, 1)
        assert ids[-1] == NodeID(3, 3)

    def test_zone_major_layout(self):
        ids = grid_ids(2, 2)
        assert ids == (NodeID(1, 1), NodeID(1, 2), NodeID(2, 1), NodeID(2, 2))

    def test_validation(self):
        with pytest.raises(ConfigError):
            grid_ids(0, 3)


class TestCommand:
    def test_get_and_put_constructors(self):
        get = Command.get("k")
        put = Command.put("k", 5)
        assert get.is_read and not get.is_write
        assert put.is_write and not put.is_read
        assert put.value == 5

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            Command("DELETE", "k")

    def test_conflicts_same_key_write(self):
        r = Command.get("k")
        w = Command.put("k", 1)
        w2 = Command.put("k", 2)
        assert w.conflicts_with(w2)
        assert r.conflicts_with(w)
        assert w.conflicts_with(r)

    def test_reads_never_conflict(self):
        assert not Command.get("k").conflicts_with(Command.get("k"))

    def test_different_keys_never_conflict(self):
        assert not Command.put("a", 1).conflicts_with(Command.put("b", 2))

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Command.get("k").op = "PUT"


class TestMessageMetadata:
    def test_defaults(self):
        assert Message.size_bytes() == 100
        assert Message.weight() == 1.0

    def test_client_messages_sized(self):
        assert ClientRequest.SIZE_BYTES == 120
        assert ClientReply.SIZE_BYTES == 120

    def test_epaxos_messages_penalized(self):
        """The paper penalizes EPaxos message processing and size."""
        from repro.protocols.epaxos import Accept, CommitMsg, PreAccept, PreAcceptOK

        for cls in (PreAccept, PreAcceptOK, Accept, CommitMsg):
            assert cls.WEIGHT > 1.0
            assert cls.SIZE_BYTES >= 200
