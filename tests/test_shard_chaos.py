"""Chaos soak for the sharded runtime (slow tier).

Three stressors the ISSUE names explicitly — coordinator crashes between
prepare and commit, shard rebalances mid-transaction, zipfian key skew —
plus the seeded ShardNemesis soak.  Every scenario must end with a
linearizable merged history, per-group consensus invariants intact, and
zero 2PC atomicity violations.

The CI chaos matrix shards extra seeds across jobs via ``CHAOS_SEEDS``
and records applied schedules to ``CHAOS_ARTIFACTS`` for replay.
"""

import os

import pytest

from repro.bench.shard_bench import ShardedClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.checkers.txn import check_txn_atomicity
from repro.paxi.config import Config
from repro.protocols.paxos import MultiPaxos
from repro.shard.cluster import ShardedCluster
from repro.shard.nemesis import ShardNemesis
from repro.shard.placement import ShardSpec
from repro.shard.txn import ShardedTxnRuntime

pytestmark = pytest.mark.slow

SOAK_SEEDS = (
    [int(s) for s in os.environ["CHAOS_SEEDS"].split(",") if s.strip()]
    if os.environ.get("CHAOS_SEEDS")
    else [7, 19, 101]
)


def make_cluster(seed, count=3, buckets=24):
    cluster = ShardedCluster(
        Config.lan(3, 3, seed=seed, shards=ShardSpec(count=count, buckets=buckets))
    ).start(MultiPaxos)
    cluster.run_for(0.3)
    return cluster


def record_schedule(label, seed, events):
    directory = os.environ.get("CHAOS_ARTIFACTS")
    if not directory:
        return
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, f"schedule-{label}-seed{seed}.txt"), "w") as f:
        f.write(
            f"# replay: ShardNemesis(seed={seed}) over "
            f"Config.lan(3, 3, seed={seed}, shards=ShardSpec(count=3, buckets=24))\n"
        )
        for event in events:
            f.write(str(event) + "\n")


def assert_all_clear(cluster, label):
    cluster.run_for(0.5)
    history_ok, groups_ok = cluster.verify()
    assert history_ok, f"{label}: merged history not linearizable"
    assert groups_ok, f"{label}: per-group consensus invariants broken"
    check = check_txn_atomicity(cluster)
    assert check.ok, f"{label}: {check.violations[:5]}"


class TestRebalanceMidTransaction:
    @pytest.mark.parametrize("seed", SOAK_SEEDS)
    def test_rebalance_during_2pc_traffic_stays_atomic(self, seed):
        cluster = make_cluster(seed)
        bench = ShardedClosedLoopBenchmark(
            cluster,
            WorkloadSpec(keys=200, write_ratio=0.5),
            concurrency=6,
            retry_timeout=0.3,
            txn_ratio=0.3,
        )
        # Move a bucket every 0.2s while transactions are in flight.
        for i in range(5):
            bucket = (seed + i * 5) % cluster.spec.buckets
            dst = (cluster.placement.shard_of_bucket(bucket) + 1) % cluster.shard_count
            cluster.rebalance(bucket, dst, at=cluster.now + 0.1 + 0.2 * i)
        bench.run(duration=1.2, warmup=0.0, settle=0.0)
        assert bench.txns_committed > 0
        assert len(cluster.rebalances) == 5
        cluster.recover_txns()
        assert_all_clear(cluster, f"rebalance-mid-txn seed={seed}")

    def test_forced_drain_abandons_stragglers_soundly(self):
        cluster = make_cluster(seed=43)
        bench = ShardedClosedLoopBenchmark(
            cluster,
            WorkloadSpec(keys=50, write_ratio=0.8),
            concurrency=8,
            retry_timeout=0.3,
        )
        # A drain window shorter than a commit round forces abandonment.
        for bucket in range(0, 24, 3):
            dst = (cluster.placement.shard_of_bucket(bucket) + 1) % cluster.shard_count
            cluster.rebalance(bucket, dst, at=cluster.now + 0.2, drain_timeout=1e-4)
        bench.run(duration=0.8, warmup=0.0, settle=0.0)
        assert len(cluster.rebalances) == 8
        assert_all_clear(cluster, "forced-drain")


class TestZipfianSkew:
    @pytest.mark.parametrize("seed", SOAK_SEEDS)
    def test_skewed_keys_with_txn_mix(self, seed):
        cluster = make_cluster(seed + 1000, count=4, buckets=16)
        bench = ShardedClosedLoopBenchmark(
            cluster,
            WorkloadSpec(keys=100, write_ratio=0.5, distribution="zipfian"),
            concurrency=8,
            retry_timeout=0.3,
            txn_ratio=0.2,
        )
        result = bench.run(duration=1.0, warmup=0.1, settle=0.0)
        assert result.completed > 0
        # Zipfian overlap means real lock contention: aborts are expected,
        # committed work must still exist.
        assert bench.txns_committed > 0
        cluster.recover_txns()
        assert_all_clear(cluster, f"zipfian seed={seed}")


class TestShardNemesisSoak:
    @pytest.mark.parametrize("seed", SOAK_SEEDS)
    def test_full_soak_faults_plus_rebalances(self, seed):
        cluster = make_cluster(seed)
        nemesis = ShardNemesis(
            seed=seed,
            horizon=1.0,
            events=2,
            rebalances=2,
            kinds=("crash", "drop", "slow", "flaky"),
        )
        events = nemesis.unleash(cluster)
        record_schedule("shard-soak", seed, events)
        assert any(e.kind == "rebalance" for e in events)
        bench = ShardedClosedLoopBenchmark(
            cluster,
            WorkloadSpec(keys=150, write_ratio=0.5),
            concurrency=6,
            retry_timeout=0.3,
            txn_ratio=0.2,
        )
        result = bench.run(duration=1.4, warmup=0.0, settle=0.0)
        assert result.completed > 0
        cluster.run_for(1.0)  # faults expire, groups re-elect
        recovered = cluster.recover_txns()
        record_schedule("shard-soak-recovery", seed, recovered)
        assert_all_clear(cluster, f"nemesis seed={seed}")
