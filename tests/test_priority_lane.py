"""Tests for the protocol-traffic priority lane.

Under admission control, shed-able work is only ever *client* ingress —
but a saturated replica's FIFO queue can still starve protocol-internal
messages behind thousands of queued client requests, turning an
overloaded node into a falsely-suspected one.  The priority lane
(``params: priority_lanes=True``) drains control-plane messages first:
heartbeats, votes, commits, and catch-up are answered after at most one
in-service job, no matter the data-plane backlog.
"""

from dataclasses import dataclass

import pytest

from repro.errors import SimulationError
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import ClientRequest, Command, Message
from repro.paxi.node import Replica
from repro.paxi.detector import FAILED
from repro.protocols.paxos import MultiPaxos
from repro.sim.clock import EventLoop
from repro.sim.server import Server, ServiceProfile


# ----------------------------------------------------------------------
# Server level: the lane itself
# ----------------------------------------------------------------------


def make() -> tuple[EventLoop, Server]:
    loop = EventLoop()
    return loop, Server(loop)


def test_priority_jobs_overtake_fifo_backlog():
    loop, server = make()
    done = []
    for i in range(5):
        server.submit(1.0, lambda i=i: done.append(("data", i, loop.now)))
    server.submit_priority(0.5, lambda: done.append(("ctrl", loop.now)))
    loop.run()
    # The first data job was already in service; the control job runs
    # right after it, ahead of the four still-queued data jobs.
    assert done[1] == ("ctrl", 1.5)
    assert [d[0] for d in done] == ["data", "ctrl", "data", "data", "data", "data"]


def test_priority_lane_is_fifo_among_itself():
    loop, server = make()
    done = []
    server.submit(1.0, lambda: done.append("data"))
    server.submit_priority(0.1, lambda: done.append("a"))
    server.submit_priority(0.1, lambda: done.append("b"))
    loop.run()
    assert done == ["data", "a", "b"]


def test_priority_on_idle_server_runs_immediately():
    loop, server = make()
    done = []
    server.submit_priority(0.25, lambda: done.append(loop.now))
    loop.run()
    assert done == [0.25]


def test_priority_negative_cost_rejected():
    _loop, server = make()
    with pytest.raises(SimulationError):
        server.submit_priority(-0.1, lambda: None)


def test_priority_jobs_share_stats_accounting():
    loop, server = make()
    server.submit(1.0, lambda: None)
    server.submit_priority(0.5, lambda: None)
    loop.run()
    assert server.stats.jobs_completed == 2
    assert server.stats.busy_seconds == pytest.approx(1.5)
    assert server.stats.max_queue_length == 2


def test_priority_respects_slow_factor():
    loop, server = make()
    server.set_slow_factor(4.0)
    done = []
    server.submit_priority(0.5, lambda: done.append(loop.now))
    loop.run()
    assert done == [2.0]


# ----------------------------------------------------------------------
# Replica level: routing
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Ping(Message):
    SIZE_BYTES = 40


class PingEcho(Replica):
    """Executes client requests; records when each Ping handler ran.
    (No replies: the flood source is a bare address, not a session.)"""

    def __init__(self, deployment, node_id):
        super().__init__(deployment, node_id)
        self.ping_times: list[float] = []
        self.register(ClientRequest, lambda src, m: self.store.execute(m.command))
        self.register(Ping, lambda src, m: self.ping_times.append(self.now))


#: Heavy per-message CPU so a small flood builds a long backlog.
SLOW = ServiceProfile(t_in=0.01, t_out=1e-6)


def _flooded_replica(**params) -> tuple[Deployment, PingEcho]:
    dep = Deployment(Config.lan(1, 1, seed=3, profile=SLOW, **params)).start(PingEcho)
    replica = next(iter(dep.replicas.values()))
    for i in range(100):
        request = ClientRequest(
            client="c", request_id=i, command=Command.put(f"k{i}", i)
        )
        replica.on_network_receive("c", request, 100)
    replica.on_network_receive("peer", Ping(), 40)
    dep.cluster.loop.run()
    return dep, replica


def test_ping_overtakes_client_backlog_with_lanes():
    _dep, replica = _flooded_replica(priority_lanes=True)
    # ~1s of queued client work; the ping clears after roughly one job.
    assert replica.ping_times and replica.ping_times[0] < 0.1


def test_ping_waits_behind_backlog_without_lanes():
    _dep, replica = _flooded_replica()
    assert replica.ping_times and replica.ping_times[0] > 0.9


def test_client_requests_stay_on_the_data_lane():
    dep, replica = _flooded_replica(priority_lanes=True)
    # All 100 requests were still served (the lane reorders, never sheds).
    assert replica.store.version("k99") == 1
    assert dep.cluster.loop.now == pytest.approx(100 * 0.01, rel=0.1)


# ----------------------------------------------------------------------
# The regression the lane exists for: a saturated follower still hears
# the leader's heartbeats, so the detector never falsely suspects it.
# ----------------------------------------------------------------------

LEADER = NodeID(1, 1)


def _saturated_follower(**params) -> tuple[Deployment, MultiPaxos, MultiPaxos]:
    dep = Deployment(
        Config.lan(1, 3, seed=7, detector=True, **params)
    ).start(MultiPaxos)
    dep.run_until(0.5)  # leader elected, monitors warm
    leader = dep.replicas[LEADER]
    follower = next(r for r in dep.replicas.values() if not r.active)
    # 0.5 s of bulk CPU work lands on the follower all at once (snapshot
    # install, compaction, a forwarded batch -- anything data-plane).
    for _ in range(100):
        follower._server.submit(0.005, lambda: None)
    dep.run_until(0.9)  # backlog still draining until ~1.0
    return dep, leader, follower


def test_saturated_follower_keeps_hearing_heartbeats_with_lanes():
    _dep, leader, follower = _saturated_follower(priority_lanes=True)
    assert leader.active
    # Heartbeats kept flowing through the lane: no accrued silence, so no
    # false FAILED verdict and no election against the healthy leader.
    # (A transient DEGRADED reading is tolerable -- one vote can never
    # trigger a handoff -- what must not happen is failure suspicion.)
    verdict = follower._monitor.assess(LEADER, follower.clock.now)
    assert verdict != FAILED
    assert leader.handoffs_completed == 0


def test_saturated_follower_falsely_suspects_without_lanes():
    _dep, _leader, follower = _saturated_follower()
    # Heartbeats are queued behind the backlog: 0.4 s of apparent silence
    # against a 20 ms cadence reads as node death.  This is the false
    # positive the priority lane eliminates.
    verdict = follower._monitor.assess(LEADER, follower.clock.now)
    assert verdict == FAILED
