"""Integration tests for Raft (the etcd stand-in of Figure 7)."""

import pytest

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import Command
from repro.protocols.raft import LEADER, Raft

from tests.conftest import assert_correct, run_protocol


def test_bootstrap_leader_elected(lan9):
    dep = Deployment(lan9).start(Raft)
    dep.run_for(0.05)
    assert dep.replicas[NodeID(1, 1)].state == LEADER
    assert all(r.leader_hint == NodeID(1, 1) for r in dep.replicas.values())


def test_write_read_roundtrip(lan9):
    dep = Deployment(lan9).start(Raft)
    dep.run_for(0.05)
    client = dep.new_client()
    seen = []
    client.invoke(Command.put("x", "v1"), on_done=lambda r, l: seen.append(r.value))
    dep.run_for(0.05)
    client.invoke(Command.get("x"), on_done=lambda r, l: seen.append(r.value))
    dep.run_for(0.05)
    assert seen == ["v1", "v1"]


def test_log_replication_converges(lan9):
    dep, _res = run_protocol(Raft, lan9, WorkloadSpec(keys=3, write_ratio=1.0), concurrency=2)
    dep.run_for(0.3)
    leader_log = dep.replicas[NodeID(1, 1)].log
    for replica in dep.replicas.values():
        prefix = replica.log[: len(leader_log)]
        assert [rec for _i, rec in prefix] == [rec for _i, rec in leader_log[: len(prefix)]]
    assert_correct(dep)


def test_linearizable_under_contention(lan9):
    dep, res = run_protocol(Raft, lan9, WorkloadSpec(keys=1), concurrency=8)
    assert res.completed > 100
    assert_correct(dep)


def test_leader_crash_triggers_new_term_and_recovery():
    cfg = Config.lan(3, 3, seed=6)
    dep = Deployment(cfg).start(Raft)
    bench = ClosedLoopBenchmark(dep, WorkloadSpec(keys=5), concurrency=4, retry_timeout=0.2)
    dep.crash(NodeID(1, 1), duration=1.5, at=0.3)
    result = bench.run(duration=2.5, warmup=0.0, settle=0.05)
    leaders = [r for r in dep.replicas.values() if r.state == LEADER]
    assert any(r.term > 1 for r in dep.replicas.values())
    late_ops = [op for op in dep.history.operations if op.returned_at > 1.5]
    assert len(late_ops) > 100
    assert result.failed == 0
    assert_correct(dep)


def test_stale_leader_steps_down_after_thaw():
    cfg = Config.lan(3, 3, seed=7)
    dep = Deployment(cfg).start(Raft)
    bench = ClosedLoopBenchmark(dep, WorkloadSpec(keys=5), concurrency=2, retry_timeout=0.2)
    dep.crash(NodeID(1, 1), duration=1.0, at=0.2)
    bench.run(duration=2.5, warmup=0.0, settle=0.05)
    dep.run_for(0.5)
    old = dep.replicas[NodeID(1, 1)]
    leaders = [r.id for r in dep.replicas.values() if r.state == LEADER]
    assert len(leaders) == 1
    assert_correct(dep)


def test_vote_denied_to_stale_log():
    """A candidate with a shorter log must not win (election safety)."""
    dep = Deployment(Config.lan(1, 3, seed=8)).start(Raft)
    dep.run_for(0.05)
    client = dep.new_client()
    for i in range(5):
        client.invoke(Command.put("k", f"v{i}"))
    dep.run_for(0.1)
    a, b, c = dep.config.node_ids
    # Node c misses everything from now on, then campaigns.
    follower = dep.replicas[c]
    follower.log = follower.log[:1]  # amputate its log
    follower.commit_index = min(follower.commit_index, 1)
    follower._start_election()
    dep.run_for(0.1)
    assert follower.state != LEADER


def test_throughput_close_to_paxos(lan9):
    """Figure 7: Paxi/Paxos and Raft converge to similar max throughput."""
    from repro.protocols.paxos import MultiPaxos

    _dp, paxos = run_protocol(MultiPaxos, Config.lan(3, 3, seed=9), concurrency=96, duration=0.3)
    _dr, raft = run_protocol(Raft, Config.lan(3, 3, seed=9), concurrency=96, duration=0.3)
    assert raft.throughput == pytest.approx(paxos.throughput, rel=0.3)
