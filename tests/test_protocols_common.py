"""Unit tests for shared protocol machinery: ballots, log, SCC graph."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ProtocolError
from repro.paxi.ids import NodeID
from repro.paxi.message import Command
from repro.paxi.quorum import MajorityQuorum
from repro.protocols.ballot import ZERO, Ballot, initial_ballot
from repro.protocols.graph import tarjan_sccs
from repro.protocols.log import CommandLog, RequestInfo


class TestBallot:
    def test_ordering_counter_first(self):
        assert Ballot(1, NodeID(9, 9)) < Ballot(2, NodeID(1, 1))

    def test_owner_breaks_ties(self):
        assert Ballot(1, NodeID(1, 1)) < Ballot(1, NodeID(1, 2))

    def test_next_is_strictly_larger_for_any_owner(self):
        b = Ballot(5, NodeID(3, 3))
        assert b.next(NodeID(1, 1)) > b

    def test_initial_above_zero(self):
        assert initial_ballot(NodeID(1, 1)) > ZERO

    def test_str(self):
        assert str(Ballot(3, NodeID(1, 2))) == "3@1.2"


B1 = Ballot(1, NodeID(1, 1))
B2 = Ballot(2, NodeID(1, 2))


class TestCommandLog:
    def test_append_assigns_sequential_slots(self):
        log = CommandLog()
        assert log.append(B1, Command.get("a")) == 1
        assert log.append(B1, Command.get("b")) == 2

    def test_commit_and_execute_in_order(self):
        log = CommandLog()
        s1 = log.append(B1, Command.get("a"))
        s2 = log.append(B1, Command.get("b"))
        log.commit(s2)
        assert log.executable() == []  # s1 not committed: s2 must wait
        log.commit(s1)
        runnable = [slot for slot, _e in log.executable()]
        assert runnable == [s1, s2]
        log.mark_executed(s1)
        log.mark_executed(s2)
        assert log.execute_index == 3

    def test_commit_upto_contiguous(self):
        log = CommandLog()
        for _ in range(3):
            log.append(B1, Command.get("x"))
        log.commit(1)
        log.commit(3)
        assert log.commit_upto() == 1
        log.commit(2)
        assert log.commit_upto() == 3

    def test_accept_does_not_overwrite_committed(self):
        log = CommandLog()
        log.accept(1, B1, Command.put("k", "keep"))
        log.commit(1)
        log.accept(1, B2, Command.put("k", "clobber"))
        assert log.entries[1].command.value == "keep"

    def test_accept_higher_ballot_overwrites(self):
        log = CommandLog()
        log.accept(1, B1, Command.put("k", "old"))
        log.accept(1, B2, Command.put("k", "new"))
        assert log.entries[1].command.value == "new"

    def test_accept_lower_ballot_ignored(self):
        log = CommandLog()
        log.accept(1, B2, Command.put("k", "new"))
        log.accept(1, B1, Command.put("k", "old"))
        assert log.entries[1].command.value == "new"

    def test_accept_advances_next_slot(self):
        log = CommandLog()
        log.accept(7, B1, Command.get("x"))
        assert log.next_slot == 8

    def test_commit_unknown_slot_raises(self):
        with pytest.raises(ProtocolError):
            CommandLog().commit(3)

    def test_execute_uncommitted_raises(self):
        log = CommandLog()
        log.append(B1, Command.get("a"))
        with pytest.raises(ProtocolError):
            log.mark_executed(1)

    def test_uncommitted_view(self):
        log = CommandLog()
        log.append(B1, Command.get("a"))
        log.append(B1, Command.get("b"))
        log.commit(1)
        assert list(log.uncommitted()) == [2]

    def test_missing_slots(self):
        log = CommandLog()
        log.accept(2, B1, Command.get("b"))
        log.accept(5, B1, Command.get("e"))
        assert log.missing_slots(5) == [1, 3, 4]

    def test_quorum_attached_to_entry(self):
        log = CommandLog()
        q = MajorityQuorum([NodeID(1, 1), NodeID(1, 2), NodeID(1, 3)])
        slot = log.append(B1, Command.get("a"), RequestInfo("c", 1), q)
        assert log.entries[slot].quorum is q


class TestTarjan:
    def test_chain_dependencies_first(self):
        # 3 depends on 2 depends on 1 (edges point at dependencies).
        edges = {3: [2], 2: [1], 1: []}
        sccs = tarjan_sccs([3], lambda n: edges[n])
        assert sccs == [[1], [2], [3]]

    def test_cycle_is_one_component(self):
        edges = {1: [2], 2: [1]}
        sccs = tarjan_sccs([1], lambda n: edges[n])
        assert len(sccs) == 1
        assert sorted(sccs[0]) == [1, 2]

    def test_component_order_respects_condensation(self):
        # {2,3} form a cycle that depends on {1}; 4 depends on the cycle.
        edges = {4: [2], 2: [3], 3: [2, 1], 1: []}
        sccs = tarjan_sccs([4], lambda n: edges[n])
        flat = ["".join(map(str, sorted(c))) for c in sccs]
        assert flat == ["1", "23", "4"]

    def test_multiple_roots_shared_subgraph(self):
        edges = {1: [], 2: [1], 3: [1]}
        sccs = tarjan_sccs([2, 3], lambda n: edges[n])
        flat = [c[0] for c in sccs]
        assert flat.index(1) < flat.index(2)
        assert flat.index(1) < flat.index(3)
        assert len(sccs) == 3  # node 1 visited once

    def test_long_chain_no_recursion_limit(self):
        n = 50_000
        edges = {i: [i - 1] for i in range(1, n)}
        edges[0] = []
        sccs = tarjan_sccs([n - 1], lambda v: edges[v])
        assert len(sccs) == n
        assert sccs[0] == [0]
        assert sccs[-1] == [n - 1]

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=15),
            st.lists(st.integers(min_value=0, max_value=15), max_size=4),
            max_size=16,
        )
    )
    def test_sccs_partition_reachable_nodes(self, raw):
        edges = {k: [v for v in vs if v in raw] for k, vs in raw.items()}
        sccs = tarjan_sccs(sorted(edges), lambda n: edges[n])
        seen = [n for c in sccs for n in c]
        assert sorted(seen) == sorted(edges)  # each node in exactly one SCC

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=12),
            st.lists(st.integers(min_value=0, max_value=12), max_size=3),
            max_size=13,
        )
    )
    def test_dependencies_emitted_before_dependents(self, raw):
        edges = {k: [v for v in vs if v in raw] for k, vs in raw.items()}
        sccs = tarjan_sccs(sorted(edges), lambda n: edges[n])
        position = {}
        for i, component in enumerate(sccs):
            for node in component:
                position[node] = i
        for node, deps in edges.items():
            for dep in deps:
                assert position[dep] <= position[node]
