"""Batched Equations 1-7: algebra, identities, and the batched model.

The batched variants must collapse to the paper's originals at B = 1,
divide exactly by B otherwise, and the batched Table-2 service time must
price the fatter accept message honestly (per-request cost decreasing in
B but never below the pure NIC floor).
"""

from __future__ import annotations

import pytest

from repro.core.latency import (
    batched_expected_latency,
    expected_batch_delay,
    expected_latency,
)
from repro.core.load import (
    batched_capacity,
    batched_load,
    batched_load_epaxos,
    batched_load_paxos,
    batched_load_wpaxos,
    capacity,
    expected_batch_size,
    load,
    load_epaxos,
    load_paxos,
    load_wpaxos,
)
from repro.core.protocol_models import BatchedPaxosModel, PaxosModel
from repro.core.service import (
    paxos_batched_leader_work,
    paxos_batched_service_time,
    paxos_leader_work,
    paxos_service_time,
)
from repro.core.topology import lan
from repro.errors import ModelError


# ---------------------------------------------------------------------------
# Batched load / capacity (Equations 1-6)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("leaders,quorum,conflict", [(1, 5, 0.0), (3, 3, 0.0), (9, 5, 0.3)])
def test_batched_load_is_identity_at_b1(leaders, quorum, conflict):
    assert batched_load(leaders, quorum, conflict, 1) == load(leaders, quorum, conflict)
    assert batched_capacity(leaders, quorum, conflict, 1) == capacity(
        leaders, quorum, conflict
    )


@pytest.mark.parametrize("batch_size", [2, 8, 16, 64])
def test_batched_load_divides_by_b(batch_size):
    assert batched_load(1, 5, 0.0, batch_size) == pytest.approx(
        load(1, 5, 0.0) / batch_size
    )
    assert batched_capacity(1, 5, 0.0, batch_size) == pytest.approx(
        batch_size * capacity(1, 5, 0.0)
    )


def test_batched_specializations():
    assert batched_load_paxos(9, 16) == pytest.approx(load_paxos(9) / 16)
    assert batched_load_epaxos(9, 0.3, 8) == pytest.approx(load_epaxos(9, 0.3) / 8)
    assert batched_load_wpaxos(9, 3, 4) == pytest.approx(load_wpaxos(9, 3) / 4)
    # The paper's N=9 corollary survives batching at equal B.
    assert batched_load_paxos(9, 8) > batched_load_wpaxos(9, 3, 8)


def test_batched_load_rejects_bad_batch_size():
    with pytest.raises(ModelError):
        batched_load(1, 5, 0.0, 0)
    with pytest.raises(ModelError):
        batched_load_paxos(9, -2)


def test_expected_batch_size_regimes():
    # Size-only batching always fills.
    assert expected_batch_size(10_000.0, 16, None) == 16
    # Sparse traffic: one command per window.
    assert expected_batch_size(0.0, 16, 0.001) == 1.0
    # Window-bound midrange: 1 + lambda * W.
    assert expected_batch_size(5_000.0, 16, 0.001) == pytest.approx(6.0)
    # Heavy traffic clamps at B.
    assert expected_batch_size(1e6, 16, 0.001) == 16
    with pytest.raises(ModelError):
        expected_batch_size(-1.0, 16, 0.001)
    with pytest.raises(ModelError):
        expected_batch_size(100.0, 16, -0.001)


# ---------------------------------------------------------------------------
# Batch delay and batched Equation 7
# ---------------------------------------------------------------------------


def test_expected_batch_delay_limits():
    assert expected_batch_delay(1000.0, 1, 0.01) == 0.0  # no batching
    assert expected_batch_delay(0.0, 16, 0.002) == 0.002  # lone request waits W
    assert expected_batch_delay(0.0, 16, None) == 0.0
    # Size-bound regime: (B-1)/(2 lambda).
    assert expected_batch_delay(30_000.0, 16, 0.01) == pytest.approx(15 / 60_000.0)
    # Window caps the fill delay.
    assert expected_batch_delay(100.0, 16, 0.001) == 0.001
    # Delay shrinks as traffic grows.
    assert expected_batch_delay(40_000.0, 16, 0.01) < expected_batch_delay(
        10_000.0, 16, 0.01
    )
    with pytest.raises(ModelError):
        expected_batch_delay(-1.0, 16, 0.01)
    with pytest.raises(ModelError):
        expected_batch_delay(100.0, 0, 0.01)


def test_batched_equation7_adds_delay():
    base = expected_latency(0.0, 0.5, 80.0, 30.0)
    assert batched_expected_latency(0.0, 0.5, 80.0, 30.0, 0.0) == base
    assert batched_expected_latency(0.0, 0.5, 80.0, 30.0, 2.5) == pytest.approx(base + 2.5)
    with pytest.raises(ModelError):
        batched_expected_latency(0.0, 0.5, 80.0, 30.0, -1.0)


# ---------------------------------------------------------------------------
# Batched Table-2 service time
# ---------------------------------------------------------------------------


def test_batched_leader_work_reduces_to_table2_at_b1():
    assert paxos_batched_leader_work(9, 1, 1.0) == paxos_leader_work(9)
    assert paxos_batched_service_time(9, 1) == pytest.approx(paxos_service_time(9))


def test_batched_service_time_amortizes_but_pays_fat_accepts():
    per_request = [paxos_batched_service_time(9, b) for b in (1, 2, 4, 8, 16, 64)]
    assert per_request == sorted(per_request, reverse=True)  # decreasing in B
    # The amortization is sub-linear: the fat accept and per-command costs
    # keep ts_batch/B above the naive ts/B.
    assert paxos_batched_service_time(9, 16) > paxos_service_time(9) / 16
    # ...but B=16 still beats 3x (the acceptance criterion's model side).
    assert paxos_service_time(9) / paxos_batched_service_time(9, 16) > 3.0


def test_batched_leader_work_validation():
    with pytest.raises(ModelError):
        paxos_batched_leader_work(0, 4)
    with pytest.raises(ModelError):
        paxos_batched_leader_work(9, 0)
    with pytest.raises(ModelError):
        paxos_batched_leader_work(9, 4, accept_size_factor=0.5)


# ---------------------------------------------------------------------------
# BatchedPaxosModel
# ---------------------------------------------------------------------------


def test_batched_model_is_identity_at_b1():
    topo = lan(9)
    plain = PaxosModel(topo)
    batched = BatchedPaxosModel(topo, batch_size=1)
    assert batched.max_throughput() == pytest.approx(plain.max_throughput())
    assert batched.latency_ms(2000.0) == pytest.approx(plain.latency_ms(2000.0))


def test_batched_model_scales_capacity_and_adds_delay():
    topo = lan(9)
    plain = PaxosModel(topo)
    batched = BatchedPaxosModel(topo, batch_size=16, batch_window=0.001)
    speedup = batched.max_throughput() / plain.max_throughput()
    assert 3.0 < speedup < 16.0  # amortized, shaved by fat accepts
    # At equal (low) load the batch-fill delay makes batching slower.
    assert batched.latency_ms(1000.0) > plain.latency_ms(1000.0)
    assert batched.batch_round_service_time() == pytest.approx(
        16 * batched.round_service_time()
    )
    with pytest.raises(ModelError):
        BatchedPaxosModel(topo, batch_size=0)
    with pytest.raises(ModelError):
        BatchedPaxosModel(topo, batch_size=4, batch_window=-0.01)
