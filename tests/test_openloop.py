"""Tests for the open-loop workload engine and its arrival processes."""

import math
import random

import pytest

from repro.bench.benchmarker import OpenLoopBenchmark
from repro.bench.openloop import (
    DiurnalArrivals,
    MMPPArrivals,
    OpenLoopEngine,
    PoissonArrivals,
    TraceArrivals,
)
from repro.bench.sweep import open_loop_sweep
from repro.bench.workload import WorkloadSpec
from repro.errors import WorkloadError
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.protocols.paxos import MultiPaxos


def make_paxos(**kw):
    return Deployment(Config.lan(1, 3, seed=8, **kw)).start(MultiPaxos)


class TestArrivalProcesses:
    def test_poisson_mean_gap_matches_rate(self):
        rng = random.Random(7)
        process = PoissonArrivals(1000.0)
        gaps = [process.next_gap(0.0, rng) for _ in range(5000)]
        assert sum(gaps) / len(gaps) == pytest.approx(1e-3, rel=0.1)
        assert process.mean_rate() == 1000.0

    def test_poisson_rejects_nonpositive_rate(self):
        with pytest.raises(WorkloadError):
            PoissonArrivals(0.0)
        with pytest.raises(WorkloadError):
            PoissonArrivals(-5.0)

    def test_mmpp_long_run_rate_is_dwell_weighted(self):
        # Short dwells over a long horizon: ~1000 state cycles, so the
        # empirical rate estimator's noise is a few percent.
        rng = random.Random(3)
        process = MMPPArrivals(rates=(100.0, 2000.0), dwell=(0.05, 0.05))
        now, count = 0.0, 0
        while now < 100.0:
            now += process.next_gap(now, rng)
            count += 1
        assert count / now == pytest.approx(process.mean_rate(), rel=0.1)

    def test_mmpp_is_burstier_than_poisson(self):
        # Squared coefficient of variation of inter-arrival gaps: 1 for
        # Poisson, strictly larger for a 2-state MMPP with distinct rates.
        rng = random.Random(5)
        process = MMPPArrivals(rates=(100.0, 5000.0), dwell=(0.2, 0.2))
        gaps, now = [], 0.0
        for _ in range(20000):
            gap = process.next_gap(now, rng)
            gaps.append(gap)
            now += gap
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        assert var / mean**2 > 1.5

    def test_mmpp_validation(self):
        with pytest.raises(WorkloadError):
            MMPPArrivals(rates=(0.0, 100.0))
        with pytest.raises(WorkloadError):
            MMPPArrivals(dwell=(0.1, -0.1))

    def test_diurnal_rate_curve_spans_trough_to_peak(self):
        process = DiurnalArrivals(trough=100.0, peak=900.0, period=10.0)
        assert process.rate_at(0.0) == pytest.approx(100.0)
        assert process.rate_at(5.0) == pytest.approx(900.0)
        assert process.mean_rate() == pytest.approx(500.0)
        rates = [process.rate_at(t / 10) for t in range(100)]
        assert all(100.0 - 1e-9 <= r <= 900.0 + 1e-9 for r in rates)

    def test_diurnal_thinning_tracks_the_curve(self):
        rng = random.Random(11)
        process = DiurnalArrivals(trough=200.0, peak=2000.0, period=4.0)
        now, count = 0.0, 0
        while now < 40.0:  # integral number of periods
            now += process.next_gap(now, rng)
            count += 1
        assert count / now == pytest.approx(process.mean_rate(), rel=0.15)

    def test_diurnal_validation(self):
        with pytest.raises(WorkloadError):
            DiurnalArrivals(trough=0.0)
        with pytest.raises(WorkloadError):
            DiurnalArrivals(trough=500.0, peak=100.0)
        with pytest.raises(WorkloadError):
            DiurnalArrivals(period=0.0)

    def test_trace_replays_exact_offsets(self):
        rng = random.Random(0)
        trace = TraceArrivals([0.0, 0.25, 0.3])
        assert trace.next_gap(5.0, rng) == 0.0  # origin binds to first call
        assert trace.next_gap(5.0, rng) == pytest.approx(0.25)
        assert trace.next_gap(5.25, rng) == pytest.approx(0.05)
        assert math.isinf(trace.next_gap(5.3, rng))  # exhausted: stop

    def test_trace_loops_when_asked(self):
        rng = random.Random(0)
        trace = TraceArrivals([0.0, 0.1], loop=True)
        for _ in range(3):
            assert not math.isinf(trace.next_gap(0.0, rng))

    def test_trace_rejects_descending_offsets(self):
        with pytest.raises(WorkloadError):
            TraceArrivals([0.2, 0.1])
        with pytest.raises(WorkloadError):
            TraceArrivals([], loop=True)

    def test_trace_from_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "# warm segment then two spikes\n"
            '{"rate": 10, "duration": 0.5}\n'
            '{"t": 0.7}\n'
            '{"t": 0.9}\n'
        )
        trace = TraceArrivals.from_jsonl(str(path))
        # 10/s for 0.5s = 5 evenly spaced arrivals, then the two explicit ones.
        assert trace.offsets[:5] == [0.0, 0.1, 0.2, 0.30000000000000004, 0.4]
        assert trace.offsets[5:] == [0.7, 0.9]

    def test_trace_from_jsonl_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(WorkloadError):
            TraceArrivals.from_jsonl(str(bad))
        wrong = tmp_path / "wrong.jsonl"
        wrong.write_text('{"rate": 5}\n')
        with pytest.raises(WorkloadError):
            TraceArrivals.from_jsonl(str(wrong))
        negative = tmp_path / "neg.jsonl"
        negative.write_text('{"rate": -5, "duration": 1}\n')
        with pytest.raises(WorkloadError):
            TraceArrivals.from_jsonl(str(negative))


class TestOpenLoopEngine:
    def test_offered_tracks_configured_rate(self):
        dep = make_paxos()
        engine = OpenLoopEngine(
            dep, WorkloadSpec(keys=50), PoissonArrivals(2000.0), sites=["LAN"]
        )
        result = engine.run(duration=0.4, warmup=0.1, settle=0.2)
        assert result.offered_rate == pytest.approx(2000.0, rel=0.15)
        assert result.completed > 0
        assert result.offered >= result.completed
        assert result.goodput == result.throughput

    def test_same_seed_same_run(self):
        results = []
        for _ in range(2):
            dep = make_paxos()
            engine = OpenLoopEngine(
                dep, WorkloadSpec(keys=50), PoissonArrivals(1500.0), sites=["LAN"]
            )
            results.append(engine.run(duration=0.3, warmup=0.1, settle=0.2))
        a, b = results
        assert a.offered == b.offered
        assert a.completed == b.completed
        assert a.latencies_ms == b.latencies_ms

    def test_registers_as_rate_controller(self):
        dep = make_paxos()
        engine = OpenLoopEngine(
            dep, WorkloadSpec(keys=10), PoissonArrivals(100.0), sites=["LAN"]
        )
        assert engine in dep.rate_controllers

    def test_burst_multiplies_offered_load(self):
        plain_dep = make_paxos()
        plain = OpenLoopEngine(
            plain_dep, WorkloadSpec(keys=50), PoissonArrivals(1000.0), sites=["LAN"]
        )
        base = plain.run(duration=0.4, warmup=0.1, settle=0.2)

        burst_dep = make_paxos()
        burst = OpenLoopEngine(
            burst_dep, WorkloadSpec(keys=50), PoissonArrivals(1000.0), sites=["LAN"]
        )
        burst.apply_burst(0.3, 10.0, 3.0)  # covers the whole run
        surged = burst.run(duration=0.4, warmup=0.1, settle=0.2)
        assert surged.offered == pytest.approx(3 * base.offered, rel=0.2)

    def test_burst_windows_compose_multiplicatively(self):
        dep = make_paxos()
        engine = OpenLoopEngine(
            dep, WorkloadSpec(keys=10), PoissonArrivals(100.0), sites=["LAN"]
        )
        engine.apply_burst(1.0, 1.0, 2.0)
        engine.apply_burst(1.5, 1.0, 3.0)
        assert engine.multiplier_at(0.5) == 1.0
        assert engine.multiplier_at(1.25) == 2.0
        assert engine.multiplier_at(1.75) == 6.0
        assert engine.multiplier_at(2.25) == 3.0
        assert engine.multiplier_at(2.75) == 1.0

    def test_burst_validation(self):
        dep = make_paxos()
        engine = OpenLoopEngine(
            dep, WorkloadSpec(keys=10), PoissonArrivals(100.0), sites=["LAN"]
        )
        with pytest.raises(WorkloadError):
            engine.apply_burst(1.0, 0.0, 2.0)
        with pytest.raises(WorkloadError):
            engine.apply_burst(1.0, 1.0, -1.0)

    def test_request_timeout_abandons_stragglers(self):
        # A crashed majority means nothing completes; with a patience
        # timeout every offered request concludes as a typed failure.
        dep = make_paxos()
        for node in list(dep.config.node_ids)[:2]:
            dep.crash(node, duration=None, at=0.0)
        engine = OpenLoopEngine(
            dep,
            WorkloadSpec(keys=10),
            PoissonArrivals(200.0),
            sites=["LAN"],
            request_timeout=0.05,
        )
        result = engine.run(duration=0.3, warmup=0.1, settle=0.1)
        assert result.completed == 0
        assert result.abandoned > 0

    def test_trace_driven_run_offers_exactly_the_trace(self):
        dep = make_paxos()
        engine = OpenLoopEngine(
            dep,
            WorkloadSpec(keys=10),
            TraceArrivals([0.0, 0.01, 0.02, 0.03, 0.04]),
            sites=["LAN"],
        )
        result = engine.run(duration=0.3, warmup=0.0, settle=0.1)
        assert result.offered == 5
        assert result.completed == 5

    def test_goodput_timeline_integrates_to_completions(self):
        dep = make_paxos()
        engine = OpenLoopEngine(
            dep, WorkloadSpec(keys=50), PoissonArrivals(1000.0), sites=["LAN"],
            timeline_buckets=10,
        )
        result = engine.run(duration=0.4, warmup=0.1, settle=0.2)
        width = result.window / 10
        total = round(sum(g * width for _t, g in result.goodput_timeline))
        assert total == result.completed


class TestOpenLoopBenchmarkFacade:
    def test_facade_matches_engine_bit_for_bit(self):
        """The legacy OpenLoopBenchmark now delegates to the engine; the
        two must produce identical runs from the same seed."""
        dep_a = make_paxos()
        legacy = OpenLoopBenchmark(dep_a, WorkloadSpec(keys=50), rate=1200.0, sites=["LAN"])
        a = legacy.run(duration=0.3, warmup=0.1, settle=0.2)

        dep_b = make_paxos()
        engine = OpenLoopEngine(
            dep_b, WorkloadSpec(keys=50), PoissonArrivals(1200.0), sites=["LAN"]
        )
        b = engine.run(duration=0.3, warmup=0.1, settle=0.2)

        assert a.completed == b.completed
        assert a.latencies_ms == b.latencies_ms
        assert a.throughput == b.throughput

    def test_facade_still_rejects_bad_rate(self):
        dep = make_paxos()
        with pytest.raises(WorkloadError):
            OpenLoopBenchmark(dep, WorkloadSpec(keys=10), rate=0.0)

    def test_facade_keeps_rate_attribute(self):
        dep = make_paxos()
        bench = OpenLoopBenchmark(dep, WorkloadSpec(keys=10), rate=500.0, sites=["LAN"])
        assert bench.rate == 500.0


class TestOpenLoopSweep:
    def test_sweep_orders_points_by_rate(self):
        from repro.bench.parallel import DeploymentFactory

        factory = DeploymentFactory(MultiPaxos, Config.lan(1, 3, seed=8))
        points = open_loop_sweep(
            factory,
            WorkloadSpec(keys=20),
            rates=[300.0, 900.0],
            duration=0.2,
            warmup=0.05,
            settle=0.1,
            sites=["LAN"],
        )
        assert [p.offered_rate for p in points] == [300.0, 900.0]
        assert all(p.completed > 0 for p in points)
        assert points[1].goodput > points[0].goodput
