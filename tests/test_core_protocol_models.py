"""Tests for the per-protocol analytic models (paper Figures 8, 10, 12)."""

import math

import pytest

from repro.core.protocol_models import (
    EPaxosModel,
    FPaxosModel,
    PaxosModel,
    WPaxosModel,
    mean_client_rtt_ms,
    quorum_delay_ms,
)
from repro.core.topology import aws_wan, lan
from repro.errors import ModelError

LAN9 = lan(9)
WAN5 = aws_wan()
WAN3x3 = aws_wan(("VA", "OH", "CA"), 3)


class TestQuorumDelay:
    def test_lan_uses_order_statistics(self):
        # (Q-1)=4th of 8 local draws: close to the local mean.
        dq = quorum_delay_ms(LAN9, 0, 5)
        assert 0.35 < dq < 0.5

    def test_lan_larger_quorum_waits_longer(self):
        assert quorum_delay_ms(LAN9, 0, 9) > quorum_delay_ms(LAN9, 0, 5) > quorum_delay_ms(LAN9, 0, 2)

    def test_self_quorum_is_free(self):
        assert quorum_delay_ms(LAN9, 0, 1) == 0.0

    def test_wan_takes_kth_smallest_rtt(self):
        # Leader VA (node 0) in 5-region WAN, majority 3 -> 2nd smallest RTT.
        dq = quorum_delay_ms(WAN5, 0, 3)
        assert dq == pytest.approx(62.0)  # OH=11, CA=62, IR=75, JP=162

    def test_quorum_too_large(self):
        with pytest.raises(ModelError):
            quorum_delay_ms(LAN9, 0, 10)


class TestPaxosModel:
    def test_max_throughput_matches_calibration(self):
        assert PaxosModel(LAN9).max_throughput() == pytest.approx(8000, rel=0.05)

    def test_latency_has_floor_and_wall(self):
        m = PaxosModel(LAN9)
        mu = m.max_throughput()
        low = m.latency_ms(mu * 0.05)
        high = m.latency_ms(mu * 0.97)
        assert 0.8 < low < 1.3  # ~DL + DQ + ts in a LAN
        assert high > 2 * low
        assert m.latency_ms(mu * 1.01) == math.inf

    def test_curve_is_monotone(self):
        points = PaxosModel(LAN9).curve(points=20)
        latencies = [p.latency_ms for p in points]
        assert latencies == sorted(latencies)

    def test_wan_leader_placement_matters(self):
        va = PaxosModel(WAN5, leader=0).latency_ms(100)
        jp = PaxosModel(WAN5, leader=4).latency_ms(100)
        assert va < jp  # JP is far from everything

    def test_wan_latency_dominated_by_network(self):
        # CA leader, 5 regions: the paper's Figure 10 regime (>100 ms).
        assert PaxosModel(WAN5, leader=2).latency_ms(100) > 100


class TestFPaxosModel:
    def test_smaller_q2_improves_latency_slightly_in_lan(self):
        """Paper section 5.2: 'a modest average latency improvement of just
        0.03 ms' for FPaxos |q2|=3 at N=9 in the LAN."""
        paxos = PaxosModel(LAN9).latency_ms(1000)
        fpaxos = FPaxosModel(LAN9, q2=3).latency_ms(1000)
        assert 0.01 < paxos - fpaxos < 0.08

    def test_same_throughput_as_paxos_without_thrifty(self):
        assert FPaxosModel(LAN9, q2=3).max_throughput() == pytest.approx(
            PaxosModel(LAN9).max_throughput()
        )

    def test_wan_flexible_quorums_help_a_lot(self):
        """In WANs, flexible quorums 'make a great difference in latency'."""
        paxos = PaxosModel(WAN5, leader=2).latency_ms(100)
        fpaxos = FPaxosModel(WAN5, q2=2, leader=2).latency_ms(100)
        assert paxos - fpaxos > 5

    def test_q2_validation(self):
        with pytest.raises(ModelError):
            FPaxosModel(LAN9, q2=0)


class TestEPaxosModel:
    def test_no_single_leader_bottleneck(self):
        """EPaxos spreads load: higher max throughput than Paxos even at
        c = 1 (paper section 5.2)."""
        assert EPaxosModel(LAN9, conflict=1.0).max_throughput() > PaxosModel(
            LAN9
        ).max_throughput()

    def test_conflict_degrades_throughput_monotonically(self):
        caps = [
            EPaxosModel(WAN5, conflict=c).max_throughput()
            for c in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert caps == sorted(caps, reverse=True)

    def test_figure12_shape(self):
        """Figure 12: ~40% capacity degradation from c=0 to c=1 in the
        5-region deployment, ending near the flat Paxos line."""
        free = EPaxosModel(WAN5, conflict=0.0).max_throughput()
        full = EPaxosModel(WAN5, conflict=1.0).max_throughput()
        degradation = 1 - full / free
        assert 0.30 < degradation < 0.55
        paxos = PaxosModel(WAN5).max_throughput()
        assert full == pytest.approx(paxos, rel=0.10)

    def test_latency_grows_with_conflict(self):
        lat = [EPaxosModel(LAN9, conflict=c).latency_ms(1000) for c in (0.0, 0.5, 1.0)]
        assert lat == sorted(lat)

    def test_latency_worse_than_paxos_in_lan(self):
        """'better throughput (but not latency) than Paxos' — the processing
        penalty shows up in latency."""
        assert EPaxosModel(LAN9, conflict=0.0).latency_ms(1000) > PaxosModel(
            LAN9
        ).latency_ms(1000)

    def test_conflict_validation(self):
        with pytest.raises(ModelError):
            EPaxosModel(LAN9, conflict=1.5)


class TestWPaxosModel:
    def test_throughput_improvement_is_sublinear(self):
        """Three leaders do not give 3x: the paper models ~1.55x, our
        accounting lands in the same sub-linear band."""
        ratio = (
            WPaxosModel(LAN9, 3, 3, locality=1 / 3).max_throughput()
            / PaxosModel(LAN9).max_throughput()
        )
        assert 1.3 < ratio < 2.5

    def test_locality_reduces_latency(self):
        lats = [
            WPaxosModel(WAN3x3, 3, 3, locality=l).latency_ms(100)
            for l in (0.1, 0.5, 0.9)
        ]
        assert lats == sorted(lats, reverse=True)

    def test_fz0_commits_locally(self):
        m = WPaxosModel(WAN3x3, 3, 3, locality=1.0, fz=0)
        assert m.latency_ms(100) < 5  # near-local latency

    def test_fz1_pays_nearest_neighbor(self):
        local = WPaxosModel(WAN3x3, 3, 3, locality=1.0, fz=0).latency_ms(100)
        regional = WPaxosModel(WAN3x3, 3, 3, locality=1.0, fz=1).latency_ms(100)
        assert regional > local + 5  # VA-OH RTT is 11 ms

    def test_beats_single_leader_paxos_in_wan(self):
        """Figure 10: >100 ms between Paxos (slowest) and WPaxos (fastest)."""
        wpaxos = WPaxosModel(WAN3x3, 3, 3, locality=0.7).latency_ms(100)
        paxos = PaxosModel(WAN5, leader=2).latency_ms(100)
        assert paxos - wpaxos > 100

    def test_grid_validation(self):
        with pytest.raises(ModelError):
            WPaxosModel(LAN9, 4, 3)
        with pytest.raises(ModelError):
            WPaxosModel(LAN9, 3, 3, locality=2.0)
        with pytest.raises(ModelError):
            WPaxosModel(LAN9, 3, 3, fz=3)


class TestClientRtt:
    def test_mean_over_sites(self):
        # VA leader with clients in VA and JP: (0.4271 + 162)/2.
        rtt = mean_client_rtt_ms(WAN5, "VA", ["VA", "JP"])
        assert rtt == pytest.approx((0.4271 + 162.0) / 2, rel=0.01)

    def test_empty_sites_rejected(self):
        with pytest.raises(ModelError):
            mean_client_rtt_ms(WAN5, "VA", [])


class TestWanKeeperModel:
    def test_tops_lan_capacity_ranking(self):
        """Figure 9's ordering in the model: the hierarchical broker's
        small group rounds beat WPaxos's full replication, which beats the
        single leader."""
        from repro.core.protocol_models import WanKeeperModel

        wk = WanKeeperModel(LAN9, 3, 3, locality=1 / 3)
        wp = WPaxosModel(LAN9, 3, 3, locality=1 / 3)
        px = PaxosModel(LAN9)
        assert wk.max_throughput() > wp.max_throughput() > px.max_throughput()

    def test_master_region_latency_is_local(self):
        from repro.core.protocol_models import WanKeeperModel

        m = WanKeeperModel(WAN3x3, 3, 3, locality=0.0, client_sites=["OH"], master_zone=1)
        # OH clients hitting contested tokens still commit at the OH master.
        assert m.latency_ms(100) < 3

    def test_locality_reduces_latency(self):
        from repro.core.protocol_models import WanKeeperModel

        lats = [
            WanKeeperModel(WAN3x3, 3, 3, locality=l).latency_ms(100)
            for l in (0.2, 0.6, 0.9)
        ]
        assert lats == sorted(lats, reverse=True)

    def test_validation(self):
        from repro.core.protocol_models import WanKeeperModel

        with pytest.raises(ModelError):
            WanKeeperModel(LAN9, 4, 3)
        with pytest.raises(ModelError):
            WanKeeperModel(LAN9, 3, 3, locality=1.5)
        with pytest.raises(ModelError):
            WanKeeperModel(LAN9, 3, 3, master_zone=5)


class TestVPaxosModel:
    def test_no_master_execution_hotspot(self):
        """Unlike WanKeeper, VPaxos spreads execution across zone groups,
        so its modeled capacity exceeds WanKeeper's under contention."""
        from repro.core.protocol_models import VPaxosModel, WanKeeperModel

        vp = VPaxosModel(LAN9, 3, 3, locality=0.2)
        wk = WanKeeperModel(LAN9, 3, 3, locality=0.2)
        assert vp.max_throughput() > wk.max_throughput()

    def test_balanced_wan_latency(self):
        """Figure 13: VPaxos stays balanced — per-site latency depends on
        the owner's distance, not on one master region."""
        from repro.core.protocol_models import VPaxosModel

        m = VPaxosModel(WAN3x3, 3, 3, locality=0.9)
        per_site = [
            VPaxosModel(WAN3x3, 3, 3, locality=0.9, client_sites=[s]).latency_ms(100)
            for s in ("VA", "OH", "CA")
        ]
        assert max(per_site) < 10  # all regions near-local at high locality


class TestMenciusModel:
    def test_high_capacity_no_bottleneck(self):
        from repro.core.protocol_models import MenciusModel

        m = MenciusModel(LAN9)
        assert m.max_throughput() > 2 * PaxosModel(LAN9).max_throughput()

    def test_wan_latency_paced_by_farthest_peer(self):
        """Mencius's trade-off vs EPaxos: DQ is the *maximum* peer RTT."""
        from repro.core.protocol_models import MenciusModel

        m = MenciusModel(WAN3x3, client_sites=["OH"])
        # OH's farthest peer is CA at 52 ms: latency must exceed that.
        assert m.latency_ms(100) > 50

    def test_lan_latency_competitive(self):
        from repro.core.protocol_models import MenciusModel

        assert MenciusModel(LAN9).latency_ms(1000) < 1.5

    def test_model_matches_measured_order_of_magnitude(self):
        """Cross-validate with the implementation: ~22k measured in the
        saturation sweep vs the model's busiest-node capacity."""
        from repro.core.protocol_models import MenciusModel

        assert MenciusModel(LAN9).max_throughput() == pytest.approx(22_500, rel=0.15)
