"""Unit and property tests for k-order statistics of RTTs."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.order_stats import (
    expected_kth_normal,
    expected_kth_normal_blom,
    kth_smallest,
    normal_quantile,
)
from repro.errors import ModelError


class TestNormalQuantile:
    def test_median(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)

    def test_known_values(self):
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-4)
        assert normal_quantile(0.84134) == pytest.approx(1.0, abs=1e-3)

    def test_symmetry(self):
        for p in (0.01, 0.1, 0.3, 0.45):
            assert normal_quantile(p) == pytest.approx(-normal_quantile(1 - p), abs=1e-7)

    def test_tails(self):
        assert normal_quantile(1e-9) < -5
        assert normal_quantile(1 - 1e-9) > 5

    @pytest.mark.parametrize("p", [0.0, 1.0, -0.5, 2.0])
    def test_domain(self, p):
        with pytest.raises(ModelError):
            normal_quantile(p)

    def test_agrees_with_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        for p in (0.001, 0.01, 0.2, 0.5, 0.77, 0.999):
            assert normal_quantile(p) == pytest.approx(scipy_stats.norm.ppf(p), abs=1e-7)


class TestBlom:
    def test_median_order_statistic_near_mu(self):
        # The middle order statistic of an odd sample sits at the mean.
        assert expected_kth_normal_blom(3, 5, 10.0, 2.0) == pytest.approx(10.0, abs=0.01)

    def test_extremes_straddle_mu(self):
        lo = expected_kth_normal_blom(1, 9, 0.0, 1.0)
        hi = expected_kth_normal_blom(9, 9, 0.0, 1.0)
        assert lo < 0 < hi
        assert lo == pytest.approx(-hi, abs=1e-9)

    def test_monotone_in_k(self):
        values = [expected_kth_normal_blom(k, 8, 5.0, 1.0) for k in range(1, 9)]
        assert values == sorted(values)

    def test_agrees_with_monte_carlo(self):
        """The paper uses Monte Carlo; Blom must agree closely for the
        quorum sizes we care about (the reason we default to Blom)."""
        rng = random.Random(123)
        for k, n in ((3, 8), (4, 8), (2, 4), (6, 8)):
            mc = expected_kth_normal(k, n, 0.4271, 0.0476, samples=40_000, rng=rng)
            blom = expected_kth_normal_blom(k, n, 0.4271, 0.0476)
            assert mc == pytest.approx(blom, abs=0.003)

    def test_invalid_k(self):
        with pytest.raises(ModelError):
            expected_kth_normal_blom(0, 5, 0, 1)
        with pytest.raises(ModelError):
            expected_kth_normal_blom(6, 5, 0, 1)


class TestMonteCarlo:
    def test_deterministic_with_default_rng(self):
        a = expected_kth_normal(2, 5, 0.0, 1.0, samples=500)
        b = expected_kth_normal(2, 5, 0.0, 1.0, samples=500)
        assert a == b

    def test_sample_count_validated(self):
        with pytest.raises(ModelError):
            expected_kth_normal(1, 2, 0, 1, samples=0)


class TestKthSmallest:
    def test_basic(self):
        assert kth_smallest([30.0, 10.0, 20.0], 1) == 10.0
        assert kth_smallest([30.0, 10.0, 20.0], 2) == 20.0
        assert kth_smallest([30.0, 10.0, 20.0], 3) == 30.0

    def test_out_of_range(self):
        with pytest.raises(ModelError):
            kth_smallest([1.0], 2)
        with pytest.raises(ModelError):
            kth_smallest([], 1)


@settings(max_examples=30)
@given(
    st.integers(min_value=2, max_value=12),
    st.floats(min_value=-10, max_value=10),
    st.floats(min_value=0.01, max_value=5.0),
)
def test_blom_order_statistics_are_sorted_and_centered(n, mu, sigma):
    values = [expected_kth_normal_blom(k, n, mu, sigma) for k in range(1, n + 1)]
    assert values == sorted(values)
    mid = sum(values) / n
    assert math.isclose(mid, mu, abs_tol=sigma)


@given(st.lists(st.floats(min_value=0, max_value=1e3, allow_nan=False), min_size=1, max_size=20))
def test_kth_smallest_matches_sort(values):
    for k in range(1, len(values) + 1):
        assert kth_smallest(values, k) == sorted(values)[k - 1]
