"""Config.shards schema: nested JSON, validation, per-shard derivation."""

import pytest

from repro.errors import ConfigError, UnknownShardError
from repro.paxi.config import Config
from repro.shard.placement import ShardSpec


class TestShardsSchema:
    def test_json_roundtrip_with_shards(self):
        config = Config.lan(3, 3, seed=9, shards=ShardSpec(count=4, buckets=32))
        clone = Config.from_json(config.to_json())
        assert clone.shards == config.shards
        assert clone.shard_count == 4

    def test_shards_section_parses_from_dict(self):
        config = Config.from_dict(
            {"zones": 3, "nodes_per_zone": 3, "shards": {"count": 2, "buckets": 8}}
        )
        assert config.shards == ShardSpec(count=2, buckets=8)

    def test_shards_must_be_spec_or_none(self):
        with pytest.raises(ConfigError, match="ShardSpec"):
            Config.lan(3, 3, shards=4)

    def test_bad_shards_section_is_actionable(self):
        with pytest.raises(ConfigError, match="count"):
            Config.from_dict({"shards": {"count": 0}})

    def test_pinned_leader_conflicts_with_spread_policy(self):
        config = Config.lan(3, 3)
        with pytest.raises(ConfigError, match="leaders='first'"):
            Config.lan(
                3,
                3,
                shards=ShardSpec(count=2, buckets=8),
                leader=config.node_ids[0],
            )


class TestFlatKeyDeprecation:
    def test_flat_replication_keys_warn_but_work(self):
        with pytest.deprecated_call(match="nest them under 'replication'"):
            config = Config.from_dict({"batch_size": 16, "batch_window": 0.001})
        assert config.batch_size == 16

    def test_nested_spelling_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = Config.from_dict(
                {"replication": {"batch_size": 16, "batch_window": 0.001}}
            )
        assert config.batch_size == 16

    def test_both_spellings_conflict(self):
        with pytest.raises(ConfigError, match="both at the top level"):
            Config.from_dict(
                {"batch_size": 8, "replication": {"batch_size": 16}}
            )


class TestForShard:
    def test_single_shard_config_is_identical_minus_spec(self):
        base = Config.lan(3, 3, seed=11)
        sharded = Config.lan(3, 3, seed=11, shards=ShardSpec(count=1))
        assert sharded.for_shard(0) == base

    def test_shards_get_distinct_seeds_and_spread_leaders(self):
        config = Config.lan(3, 3, seed=5, shards=ShardSpec(count=3, buckets=9))
        derived = [config.for_shard(i) for i in range(3)]
        assert len({d.seed for d in derived}) == 3
        leaders = [d.params.get("leader") for d in derived]
        assert len(set(leaders[1:])) == 2  # rotated across node positions
        for d in derived:
            assert d.shards is None  # groups are plain deployments

    def test_first_policy_leaves_leader_untouched(self):
        config = Config.lan(
            3, 3, seed=5, shards=ShardSpec(count=2, buckets=8, leaders="first")
        )
        assert "leader" not in config.for_shard(1).params

    def test_out_of_range_shard_is_an_error(self):
        config = Config.lan(3, 3, shards=ShardSpec(count=2, buckets=8))
        with pytest.raises(UnknownShardError, match="shards.count = 2"):
            config.for_shard(5)
        with pytest.raises(UnknownShardError, match="one shard"):
            Config.lan(3, 3).for_shard(1)
