"""Unit tests for seeded random streams."""

from repro.sim.random import RandomStreams, truncated_normal


def test_same_seed_same_name_same_sequence():
    a = RandomStreams(1).stream("net")
    b = RandomStreams(1).stream("net")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    streams = RandomStreams(1)
    a = [streams.stream("net").random() for _ in range(5)]
    streams2 = RandomStreams(1)
    _burn = [streams2.stream("other").random() for _ in range(100)]
    b = [streams2.stream("net").random() for _ in range(5)]
    assert a == b  # consuming "other" does not perturb "net"


def test_different_seeds_differ():
    a = RandomStreams(1).stream("x")
    b = RandomStreams(2).stream("x")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_is_cached():
    streams = RandomStreams(0)
    assert streams.stream("a") is streams.stream("a")


def test_spawn_derives_deterministic_children():
    a = RandomStreams(1).spawn("child").stream("s")
    b = RandomStreams(1).spawn("child").stream("s")
    assert a.random() == b.random()


class TestTruncatedNormal:
    def test_always_above_floor(self):
        rng = RandomStreams(3).stream("t")
        for _ in range(500):
            assert truncated_normal(rng, 0.1, 1.0, floor=0.0) > 0.0

    def test_tracks_mean_when_far_from_floor(self):
        rng = RandomStreams(4).stream("t")
        samples = [truncated_normal(rng, 100.0, 1.0) for _ in range(2000)]
        assert abs(sum(samples) / len(samples) - 100.0) < 0.2

    def test_pathological_parameters_fall_back(self):
        rng = RandomStreams(5).stream("t")
        value = truncated_normal(rng, -1000.0, 0.001, floor=0.0)
        assert value > 0.0


def test_spawn_distinct_seed_name_pairs_do_not_alias():
    """Regression for the old ``(seed << 16) ^ crc32(name)`` mix: two names
    whose CRCs agree in the low 16 bits let two different parents collide
    onto one child seed.  The ``<< 32`` mix keeps seed and CRC bits apart."""
    import zlib

    by_low: dict[int, str] = {}
    pair = None
    for i in range(100_000):
        name = f"n{i}"
        low = zlib.crc32(name.encode()) & 0xFFFF
        if low in by_low:
            pair = (by_low[low], name)
            break
        by_low[low] = name
    assert pair is not None, "no low-16-bit CRC collision found"
    n1, n2 = pair
    c1, c2 = zlib.crc32(n1.encode()), zlib.crc32(n2.encode())
    s1 = 1
    s2 = s1 ^ ((c1 ^ c2) >> 16)
    assert (s1, n1) != (s2, n2)
    assert (s1 << 16) ^ c1 == (s2 << 16) ^ c2  # the old mix aliased here
    a = RandomStreams(s1).spawn(n1)
    b = RandomStreams(s2).spawn(n2)
    assert a.seed != b.seed
    assert [a.stream("s").random() for _ in range(4)] != [
        b.stream("s").random() for _ in range(4)
    ]


def test_spawn_children_unique_across_small_grid():
    seen: dict[int, tuple[int, int]] = {}
    for seed in range(32):
        parent = RandomStreams(seed)
        for i in range(32):
            child_seed = parent.spawn(f"c{i}").seed
            assert child_seed not in seen, (seen[child_seed], (seed, i))
            seen[child_seed] = (seed, i)
