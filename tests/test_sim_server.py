"""Unit tests for the simulated CPU+NIC server queue."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.clock import EventLoop
from repro.sim.server import Server, ServiceProfile


def make() -> tuple[EventLoop, Server]:
    loop = EventLoop()
    return loop, Server(loop)


def test_single_job_completes_after_cost():
    loop, server = make()
    done = []
    server.submit(0.5, lambda: done.append(loop.now))
    loop.run()
    assert done == [0.5]


def test_fifo_ordering_and_serialization():
    loop, server = make()
    done = []
    server.submit(1.0, lambda: done.append(("a", loop.now)))
    server.submit(1.0, lambda: done.append(("b", loop.now)))
    loop.run()
    assert done == [("a", 1.0), ("b", 2.0)]


def test_queue_wait_accumulates():
    loop, server = make()
    for _ in range(3):
        server.submit(1.0, lambda: None)
    loop.run()
    # Jobs waited 0, 1, and 2 seconds respectively.
    assert server.stats.wait_seconds == pytest.approx(3.0)
    assert server.stats.mean_wait() == pytest.approx(1.0)


def test_idle_then_busy_utilization():
    loop, server = make()
    loop.call_at(1.0, server.submit, 1.0, lambda: None)
    loop.run()
    assert server.stats.busy_seconds == pytest.approx(1.0)
    assert server.stats.utilization(loop.now) == pytest.approx(0.5)


def test_zero_cost_job():
    loop, server = make()
    done = []
    server.submit(0.0, done.append, "x")
    loop.run()
    assert done == ["x"]


def test_negative_cost_rejected():
    _loop, server = make()
    with pytest.raises(SimulationError):
        server.submit(-1.0, lambda: None)


def test_freeze_delays_queued_work():
    loop, server = make()
    done = []
    server.freeze(2.0)
    server.submit(0.5, lambda: done.append(loop.now))
    loop.run()
    assert done == [2.5]


def test_freeze_extends_not_stacks():
    loop, server = make()
    server.freeze(2.0)
    server.freeze(1.0)  # shorter freeze must not shorten the first
    done = []
    server.submit(0.0, lambda: done.append(loop.now))
    loop.run()
    assert done == [2.0]


def test_jobs_submitted_during_freeze_run_after():
    loop, server = make()
    done = []
    loop.call_at(0.0, server.freeze, 1.0)
    loop.call_at(0.5, server.submit, 0.25, lambda: done.append(loop.now))
    loop.run()
    assert done == [1.25]


def test_stats_jobs_completed():
    loop, server = make()
    for _ in range(4):
        server.submit(0.1, lambda: None)
    loop.run()
    assert server.stats.jobs_completed == 4
    assert server.stats.max_queue_length == 4


def test_completion_callback_can_submit_more():
    loop, server = make()
    done = []

    def chain(n):
        done.append(loop.now)
        if n > 0:
            server.submit(1.0, chain, n - 1)

    server.submit(1.0, chain, 2)
    loop.run()
    assert done == [1.0, 2.0, 3.0]


class TestServiceProfile:
    def test_default_paxos_calibration(self):
        """The default profile puts 9-node Paxos saturation near 8,000/s
        (paper Figure 7)."""
        p = ServiceProfile()
        ts = p.t_out * 2 + 9 * p.t_in + 18 * p.nic_seconds(100)
        assert 1 / ts == pytest.approx(8000, rel=0.05)

    def test_incoming_cost(self):
        p = ServiceProfile(t_in=1e-6, t_out=2e-6, bandwidth_bps=1e6)
        assert p.incoming_cost(100) == pytest.approx(1e-6 + 100 / 1e6)

    def test_outgoing_cost_serializes_once(self):
        p = ServiceProfile(t_in=1e-6, t_out=2e-6, bandwidth_bps=1e6)
        one = p.outgoing_cost(100, copies=1)
        many = p.outgoing_cost(100, copies=5)
        assert many - one == pytest.approx(4 * 100 / 1e6)

    def test_weight_scales_cpu_only(self):
        p = ServiceProfile(t_in=1e-6, t_out=2e-6, bandwidth_bps=1e6)
        assert p.incoming_cost(100, weight=2.0) == pytest.approx(2e-6 + 1e-4)

    def test_zero_copies_rejected(self):
        with pytest.raises(SimulationError):
            ServiceProfile().outgoing_cost(100, copies=0)


@given(st.lists(st.floats(min_value=0.0, max_value=10.0, allow_nan=False), min_size=1, max_size=30))
def test_busy_time_equals_sum_of_costs(costs):
    loop, server = make()
    for cost in costs:
        server.submit(cost, lambda: None)
    loop.run()
    assert server.stats.busy_seconds == pytest.approx(sum(costs))
    assert loop.now == pytest.approx(sum(costs))
