"""Adversarial validation of the checkers: deliberately broken protocols
must be caught.

A checker that never fires is worthless; these tests implement unsound
replication schemes — reply-before-replicate with stale follower reads,
divergent state machines, and a leader lease that ignores its own expiry —
and assert the linearizability and consensus checkers flag them.  The
read-anomaly histories (stale lease read, split-brain read, non-monotonic
quorum read) are also replayed against ``checkers.staleness`` to pin the
boundary: the local-read variants are *accepted* within their staleness
bound and rejected beyond it.
"""

from repro.checkers.consensus import check_deployment
from repro.checkers.linearizability import check_history, check_history_graph
from repro.checkers.staleness import check_bounded_staleness, check_session
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.history import Operation
from repro.paxi.ids import NodeID
from repro.paxi.message import ClientReply, ClientRequest, Command, Message
from repro.paxi.node import Replica
from repro.paxi.session import SessionOptions
from repro.protocols.paxos import MultiPaxos
from dataclasses import dataclass
from typing import Any, Hashable


@dataclass(frozen=True)
class LazyReplicate(Message):
    key: Hashable = None
    value: Any = None


class UnsafePrimary(Replica):
    """Primary applies writes locally, replies immediately, and replicates
    lazily; any replica serves reads from local (possibly stale) state.
    Classic asynchronous-replication anomaly."""

    PRIMARY = NodeID(1, 1)

    def __init__(self, deployment, node_id):
        super().__init__(deployment, node_id)
        self.register(ClientRequest, self.on_request)
        self.register(LazyReplicate, self.on_replicate)

    def on_request(self, src, m):
        if m.command.is_write:
            if self.id != self.PRIMARY:
                self.send(self.PRIMARY, m)
                return
            value = self.store.execute(m.command)
            # Replicate asynchronously with an artificial 5 ms delay.
            self.set_timer(
                0.005, self.broadcast, LazyReplicate(key=m.command.key, value=m.command.value)
            )
        else:
            value = self.store.read(m.command.key)  # possibly stale!
        self.send(
            m.client,
            ClientReply(request_id=m.request_id, ok=True, value=value, replied_by=self.id),
        )

    def on_replicate(self, src, m):
        from repro.paxi.message import Command

        self.store.execute(Command.put(m.key, m.value))


def test_linearizability_checker_catches_stale_reads():
    dep = Deployment(Config.lan(1, 3, seed=1)).start(UnsafePrimary)
    writer = dep.new_client()
    reader = dep.new_client()
    # Write through the primary, then immediately read from a follower
    # before lazy replication lands.
    writer.invoke(Command.put("k", "v1"), target=NodeID(1, 1))
    dep.run_for(0.002)
    writer.invoke(Command.put("k", "v2"), target=NodeID(1, 1))
    dep.run_for(0.002)
    reader.invoke(Command.get("k"), target=NodeID(1, 3))
    dep.run_for(0.1)
    result = check_history(dep.history.snapshot())
    assert not result.ok
    kinds = {a.kind for a in result.anomalies}
    assert "stale-read" in kinds
    assert not check_history_graph(dep.history.operations)


class DivergentEcho(Replica):
    """Every replica executes only what it directly receives: state
    machines diverge immediately under multi-client load."""

    def __init__(self, deployment, node_id):
        super().__init__(deployment, node_id)
        self.register(ClientRequest, self.on_request)

    def on_request(self, src, m):
        value = self.store.execute(m.command)
        self.send(
            m.client,
            ClientReply(request_id=m.request_id, ok=True, value=value, replied_by=self.id),
        )


def test_consensus_checker_catches_divergent_histories():
    dep = Deployment(Config.lan(1, 3, seed=2)).start(DivergentEcho)
    a = dep.new_client()
    b = dep.new_client()
    # Two clients write the same key at different replicas.
    a.invoke(Command.put("k", "from-a"), target=NodeID(1, 1))
    b.invoke(Command.put("k", "from-b"), target=NodeID(1, 2))
    dep.run_for(0.05)
    result = check_deployment(dep)
    assert not result.ok
    assert result.violations[0].position == 0


def test_consensus_can_pass_while_linearizability_fails():
    """The paper's point for having both checkers: external linearizability
    and internal consensus are different properties.  The lazy primary
    keeps per-key histories prefix-consistent (single writer order), yet
    serves non-linearizable stale reads."""
    dep = Deployment(Config.lan(1, 3, seed=3)).start(UnsafePrimary)
    writer = dep.new_client()
    reader = dep.new_client()
    writer.invoke(Command.put("k", "v1"), target=NodeID(1, 1))
    dep.run_for(0.002)
    writer.invoke(Command.put("k", "v2"), target=NodeID(1, 1))
    dep.run_for(0.002)
    reader.invoke(Command.get("k"), target=NodeID(1, 3))
    dep.run_for(0.2)  # lazy replication catches up
    assert check_deployment(dep).ok  # same write order everywhere
    assert not check_history(dep.history.snapshot()).ok  # but reads were stale


# ----------------------------------------------------------------------
# Read-anomaly histories: the shapes a broken linearizable read path
# produces, written out explicitly so the checker's verdict on each is
# pinned independently of any protocol implementation.
# ----------------------------------------------------------------------


def _put(client, key, value, invoked, returned):
    return Operation(client, "PUT", key, value, value, invoked, returned)


def _get(client, key, output, invoked, returned):
    return Operation(client, "GET", key, None, output, invoked, returned)


def _stale_lease_history():
    """A deposed leaseholder serves ``v1`` from its store after the new
    leader committed ``v2`` — the canonical expired-lease anomaly."""
    return [
        _put("w", "k", "v1", 0.00, 0.01),
        _put("w", "k", "v2", 0.02, 0.03),  # new leader's write completes...
        _get("r", "k", "v1", 0.05, 0.051),  # ...then the old lease serves v1
    ]


def test_checker_rejects_stale_lease_read_history():
    result = check_history(_stale_lease_history())
    assert not result.ok
    assert {a.kind for a in result.anomalies} == {"stale-read"}
    assert not check_history_graph(_stale_lease_history())


def test_checker_rejects_split_brain_read_history():
    """Two leaders each serving their own replica: one client observes the
    new value while another still reads the old one afterwards."""
    ops = [
        _put("w", "k", "v1", 0.00, 0.01),
        _put("w", "k", "v2", 0.02, 0.03),
        _get("r-new", "k", "v2", 0.04, 0.041),  # majority side: fine
        _get("r-old", "k", "v1", 0.05, 0.051),  # minority side: stale
    ]
    result = check_history(ops)
    assert not result.ok
    stale = [a for a in result.anomalies if a.kind == "stale-read"]
    assert [a.read.client for a in stale] == ["r-old"]
    assert not check_history_graph(ops)


def test_checker_rejects_non_monotonic_quorum_read_history():
    """A quorum read that under-counts its frontier goes *backwards*: the
    same client reads v2 then v1.  Both the linearizability checker and
    the per-session monotonic-reads guarantee must fire."""
    ops = [
        _put("w", "k", "v1", 0.00, 0.01),
        _put("w", "k", "v2", 0.02, 0.03),
        _get("r", "k", "v2", 0.04, 0.041),
        _get("r", "k", "v1", 0.05, 0.051),
    ]
    result = check_history(ops)
    assert not result.ok
    assert "stale-read" in {a.kind for a in result.anomalies}
    session = check_session(ops)
    assert not session.ok
    assert {v.kind for v in session.session_violations} == {"monotonic-reads"}


def test_staleness_checker_bounds_the_local_read_variants():
    """The same anomalous reads, reinterpreted as *local* (bounded
    staleness) reads: v1 was overwritten when v2 completed at t=0.03 and
    read at t=0.05, so it is provably 0.02s stale — legal under
    delta >= 0.02, a violation below that, and exactly the
    linearizability verdict at delta = 0."""
    ops = _stale_lease_history()
    relaxed = check_bounded_staleness(ops, delta=0.05)
    assert relaxed.ok
    assert abs(relaxed.max_staleness - 0.02) < 1e-9
    tight = check_bounded_staleness(ops, delta=0.01)
    assert not tight.ok
    assert len(tight.staleness_violations) == 1
    assert tight.staleness_violations[0].read.client == "r"
    assert not check_bounded_staleness(ops, delta=0.0).ok


# ----------------------------------------------------------------------
# The planted broken lease: a real MultiPaxos deployment whose leader
# ignores lease expiry.  The linearizability checker must catch the stale
# read it serves during a partition — and the *correct* implementation
# must survive the identical scenario.
# ----------------------------------------------------------------------

OLD_LEADER = NodeID(1, 1)
LEASE_PARAMS = dict(lease_duration=0.2, max_clock_skew=0.005, election_timeout=0.1)


class BrokenLeasePaxos(MultiPaxos):
    """Lease validity stubbed to 'always valid': the textbook broken lease.
    A deposed leader keeps serving local reads long after its grants
    expired and a new leader committed writes on the other side."""

    def _lease_valid(self):
        return self._lease is not None  # ignores expiry entirely


def _expired_lease_scenario(factory):
    """Partition the initial leader (with one client) away from the
    majority for longer than the lease, let the majority elect a new
    leader and commit ``v2``, then lease-read at the old leader."""
    dep = Deployment(Config.lan(1, 5, seed=11, **LEASE_PARAMS)).start(factory)
    writer = dep.new_session(max_wait=1.0)
    reader = dep.new_session(max_wait=1.0, consistency="lease")
    assert writer.put("k", "v1").ok
    dep.run_for(0.1)  # the initial leader's lease is established
    everyone = set(dep.config.node_ids) | {c.address for c in dep.clients}
    minority = {OLD_LEADER, reader.client.address}
    dep.cluster.partition([minority, everyone - minority], 3.0, at=dep.now)
    dep.run_for(0.8)  # > lease_duration + election_timeout: grants expire
    new_leader = next(
        r.id for r in dep.replicas.values() if r.active and r.id != OLD_LEADER
    )
    assert writer.put("k", "v2", opts=SessionOptions(target=new_leader)).ok
    read = reader.get("k", opts=SessionOptions(target=OLD_LEADER))
    return dep, read


def test_linearizability_checker_flags_broken_lease():
    dep, read = _expired_lease_scenario(BrokenLeasePaxos)
    # The broken leaseholder happily serves its stale store.
    assert read.ok and read.value == "v1" and read.read_mode == "lease"
    result = check_history(dep.history.snapshot())
    assert not result.ok
    assert "stale-read" in {a.kind for a in result.anomalies}
    assert not check_history_graph(dep.history.operations)


def test_correct_lease_survives_the_same_partition():
    """Same schedule, real lease arithmetic: the deposed leader's lease has
    expired, so the read falls back to a consensus round it cannot win
    while partitioned — it blocks instead of lying."""
    dep, read = _expired_lease_scenario(MultiPaxos)
    assert not read.ok or read.value == "v2"
    assert check_history(dep.history.snapshot()).ok
