"""Adversarial validation of the checkers: deliberately broken protocols
must be caught.

A checker that never fires is worthless; these tests implement unsound
replication schemes — reply-before-replicate with stale follower reads,
and divergent state machines — and assert the linearizability and
consensus checkers flag them.
"""

from repro.checkers.consensus import check_deployment
from repro.checkers.linearizability import check_history, check_history_graph
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import ClientReply, ClientRequest, Message
from repro.paxi.node import Replica
from dataclasses import dataclass
from typing import Any, Hashable


@dataclass(frozen=True)
class LazyReplicate(Message):
    key: Hashable = None
    value: Any = None


class UnsafePrimary(Replica):
    """Primary applies writes locally, replies immediately, and replicates
    lazily; any replica serves reads from local (possibly stale) state.
    Classic asynchronous-replication anomaly."""

    PRIMARY = NodeID(1, 1)

    def __init__(self, deployment, node_id):
        super().__init__(deployment, node_id)
        self.register(ClientRequest, self.on_request)
        self.register(LazyReplicate, self.on_replicate)

    def on_request(self, src, m):
        if m.command.is_write:
            if self.id != self.PRIMARY:
                self.send(self.PRIMARY, m)
                return
            value = self.store.execute(m.command)
            # Replicate asynchronously with an artificial 5 ms delay.
            self.set_timer(
                0.005, self.broadcast, LazyReplicate(key=m.command.key, value=m.command.value)
            )
        else:
            value = self.store.read(m.command.key)  # possibly stale!
        self.send(
            m.client,
            ClientReply(request_id=m.request_id, ok=True, value=value, replied_by=self.id),
        )

    def on_replicate(self, src, m):
        from repro.paxi.message import Command

        self.store.execute(Command.put(m.key, m.value))


def test_linearizability_checker_catches_stale_reads():
    dep = Deployment(Config.lan(1, 3, seed=1)).start(UnsafePrimary)
    writer = dep.new_client()
    reader = dep.new_client()
    # Write through the primary, then immediately read from a follower
    # before lazy replication lands.
    writer.put("k", "v1", target=NodeID(1, 1))
    dep.run_for(0.002)
    writer.put("k", "v2", target=NodeID(1, 1))
    dep.run_for(0.002)
    reader.get("k", target=NodeID(1, 3))
    dep.run_for(0.1)
    result = check_history(dep.history.snapshot())
    assert not result.ok
    kinds = {a.kind for a in result.anomalies}
    assert "stale-read" in kinds
    assert not check_history_graph(dep.history.operations)


class DivergentEcho(Replica):
    """Every replica executes only what it directly receives: state
    machines diverge immediately under multi-client load."""

    def __init__(self, deployment, node_id):
        super().__init__(deployment, node_id)
        self.register(ClientRequest, self.on_request)

    def on_request(self, src, m):
        value = self.store.execute(m.command)
        self.send(
            m.client,
            ClientReply(request_id=m.request_id, ok=True, value=value, replied_by=self.id),
        )


def test_consensus_checker_catches_divergent_histories():
    dep = Deployment(Config.lan(1, 3, seed=2)).start(DivergentEcho)
    a = dep.new_client()
    b = dep.new_client()
    # Two clients write the same key at different replicas.
    a.put("k", "from-a", target=NodeID(1, 1))
    b.put("k", "from-b", target=NodeID(1, 2))
    dep.run_for(0.05)
    result = check_deployment(dep)
    assert not result.ok
    assert result.violations[0].position == 0


def test_consensus_can_pass_while_linearizability_fails():
    """The paper's point for having both checkers: external linearizability
    and internal consensus are different properties.  The lazy primary
    keeps per-key histories prefix-consistent (single writer order), yet
    serves non-linearizable stale reads."""
    dep = Deployment(Config.lan(1, 3, seed=3)).start(UnsafePrimary)
    writer = dep.new_client()
    reader = dep.new_client()
    writer.put("k", "v1", target=NodeID(1, 1))
    dep.run_for(0.002)
    writer.put("k", "v2", target=NodeID(1, 1))
    dep.run_for(0.002)
    reader.get("k", target=NodeID(1, 3))
    dep.run_for(0.2)  # lazy replication catches up
    assert check_deployment(dep).ok  # same write order everywhere
    assert not check_history(dep.history.snapshot()).ok  # but reads were stale
