"""Tests for the Table-3 workload generator."""

import random
from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.bench.workload import WorkloadGenerator, WorkloadSpec
from repro.errors import WorkloadError


def gen(spec, seed=0, name="t"):
    return WorkloadGenerator(spec, random.Random(seed), name=name)


def sample_keys(spec, n=4000, seed=0, now=0.0):
    g = gen(spec, seed)
    return [g.next_command(now).key for _ in range(n)]


class TestSpecValidation:
    def test_defaults_match_table3(self):
        spec = WorkloadSpec()
        assert spec.keys == 1000
        assert spec.write_ratio == 0.5
        assert spec.distribution == "uniform"
        assert spec.sigma == 60.0
        assert spec.speed_ms == 500.0
        assert spec.zipfian_s == 2.0
        assert spec.zipfian_v == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"keys": 0},
            {"write_ratio": 1.5},
            {"distribution": "pareto"},
            {"conflict_ratio": -0.1},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(WorkloadError):
            WorkloadSpec(**kwargs)

    def test_with_locality(self):
        spec = WorkloadSpec().with_locality(250.0)
        assert spec.distribution == "normal"
        assert spec.mu == 250.0


class TestWriteRatio:
    @pytest.mark.parametrize("ratio", [0.0, 0.5, 1.0])
    def test_observed_ratio(self, ratio):
        g = gen(WorkloadSpec(write_ratio=ratio))
        commands = [g.next_command() for _ in range(2000)]
        writes = sum(1 for c in commands if c.is_write)
        assert writes == pytest.approx(2000 * ratio, abs=80)

    def test_write_values_unique(self):
        g = gen(WorkloadSpec(write_ratio=1.0))
        values = [g.next_command().value for _ in range(500)]
        assert len(set(values)) == 500

    def test_values_distinct_across_generators(self):
        a = gen(WorkloadSpec(write_ratio=1.0), name="a")
        b = gen(WorkloadSpec(write_ratio=1.0), name="b")
        va = {a.next_command().value for _ in range(100)}
        vb = {b.next_command().value for _ in range(100)}
        assert not va & vb


class TestDistributions:
    def test_uniform_covers_key_space(self):
        keys = sample_keys(WorkloadSpec(keys=20, distribution="uniform"))
        counts = Counter(keys)
        assert set(counts) == set(range(20))
        assert max(counts.values()) < 2.0 * min(counts.values())

    def test_min_key_offset(self):
        keys = sample_keys(WorkloadSpec(keys=10, min_key=100))
        assert all(100 <= k < 110 for k in keys)

    def test_normal_concentrates_near_mu(self):
        keys = sample_keys(WorkloadSpec(keys=1000, distribution="normal", mu=500, sigma=20))
        near = sum(1 for k in keys if 440 <= k <= 560)
        assert near / len(keys) > 0.95

    def test_normal_wraps_around_keyspace(self):
        keys = sample_keys(WorkloadSpec(keys=100, distribution="normal", mu=0, sigma=10))
        assert all(0 <= k < 100 for k in keys)

    def test_moving_hotspot_drifts(self):
        spec = WorkloadSpec(keys=1000, distribution="normal", mu=0, sigma=5, move=True, speed_ms=1.0)
        early = sample_keys(spec, n=500, now=0.0)
        late = sample_keys(spec, n=500, now=0.5)  # 500 ms -> mu moved 500 keys
        # Early keys cluster at the wrap point (0/999); late keys at ~500.
        assert sum(1 for k in early if k < 20 or k > 980) > 400
        assert sum(1 for k in late if 480 <= k <= 520) > 400

    def test_zipfian_head_heavy(self):
        keys = sample_keys(WorkloadSpec(keys=100, distribution="zipfian"))
        counts = Counter(keys)
        assert counts[0] > counts.get(1, 0) >= counts.get(5, 0)
        assert counts[0] / len(keys) > 0.4  # s=2 is very skewed

    def test_exponential_decays(self):
        keys = sample_keys(WorkloadSpec(keys=100, distribution="exponential", exponential_scale=10))
        counts = Counter(keys)
        assert sum(counts[k] for k in range(10)) > sum(counts.get(k, 0) for k in range(10, 100))

    def test_all_keys_in_range(self):
        for dist in ("uniform", "normal", "zipfian", "exponential"):
            keys = sample_keys(WorkloadSpec(keys=50, distribution=dist), n=1000)
            assert all(0 <= k < 50 for k in keys), dist


class TestConflict:
    def test_conflict_ratio_targets_hot_key(self):
        spec = WorkloadSpec(keys=100, conflict_ratio=0.4, conflict_key=7)
        keys = sample_keys(spec)
        hot = sum(1 for k in keys if k == 7)
        assert hot / len(keys) == pytest.approx(0.4, abs=0.05)

    def test_conflict_key_defaults_to_min_key(self):
        spec = WorkloadSpec(keys=100, min_key=50, conflict_ratio=1.0)
        keys = sample_keys(spec, n=100)
        assert set(keys) == {50}

    def test_zero_conflict_never_forced(self):
        spec = WorkloadSpec(keys=100, conflict_ratio=0.0, conflict_key=7)
        keys = sample_keys(spec)
        assert sum(1 for k in keys if k == 7) < len(keys) * 0.05


@given(st.integers(min_value=1, max_value=200), st.sampled_from(["uniform", "normal", "zipfian", "exponential"]))
def test_generator_respects_key_bounds(keys, dist):
    spec = WorkloadSpec(keys=keys, distribution=dist)
    g = gen(spec, seed=keys)
    for _ in range(100):
        cmd = g.next_command()
        assert 0 <= cmd.key < keys
