"""Integration tests for Mencius (the framework-demonstration protocol)."""

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import Command
from repro.protocols.mencius import Mencius

from tests.conftest import assert_correct, run_protocol


def test_round_robin_slot_ownership(lan9):
    dep = Deployment(lan9).start(Mencius)
    first = dep.replicas[NodeID(1, 1)]
    last = dep.replicas[NodeID(3, 3)]
    assert first.owner_of(0) == 0 and first.owner_of(9) == 0
    assert last.owner_of(8) == 8
    assert first.next_own_slot == 0
    assert last.next_own_slot == 8


def test_any_node_commits_in_one_round(lan9):
    dep = Deployment(lan9).start(Mencius)
    seen = []
    for i, target in enumerate(dep.config.node_ids):
        client = dep.new_client()
        client.invoke(Command.put(f"k{i}", i), target=target, on_done=lambda r, l: seen.append(r.value))
    dep.run_for(0.2)
    assert sorted(seen) == list(range(9))
    assert_correct(dep)


def test_idle_nodes_skip_their_slots(lan9):
    """One busy node must not stall behind eight idle ones: their slots
    get skipped and the log advances."""
    dep = Deployment(lan9).start(Mencius)
    client = dep.new_client()
    done = []
    for i in range(10):
        client.invoke(Command.put("k", i), target=NodeID(1, 1), on_done=lambda r, l: done.append(l * 1e3))
        dep.run_for(0.1)
    assert len(done) == 10
    assert max(done) < 10  # every commit near-local despite idle peers
    replica = dep.replicas[NodeID(2, 2)]
    assert replica.store.read("k") == 9
    skipped = sum(1 for s in replica.slots.values() if s.skipped)
    assert skipped > 0
    assert_correct(dep)


def test_execution_is_global_slot_order(lan9):
    """Interleaved proposals from different nodes execute identically
    everywhere (strict slot order)."""
    dep, res = run_protocol(
        Mencius, lan9, WorkloadSpec(keys=2, write_ratio=1.0), concurrency=8, duration=0.3
    )
    dep.run_for(0.3)
    histories = [r.store.history(0) for r in dep.replicas.values()]
    longest = max(histories, key=len)
    for h in histories:
        assert h == longest[: len(h)]
    assert_correct(dep)


def test_no_single_leader_bottleneck(lan9):
    """Rotating ownership clears the ~8k single-leader ceiling."""
    from repro.protocols.paxos import MultiPaxos

    _dm, mencius = run_protocol(
        Mencius, Config.lan(3, 3, seed=83), WorkloadSpec(keys=1000), concurrency=128, duration=0.3
    )
    _dp, paxos = run_protocol(
        MultiPaxos, Config.lan(3, 3, seed=83), WorkloadSpec(keys=1000), concurrency=128, duration=0.3
    )
    assert mencius.throughput > 1.8 * paxos.throughput


def test_wan_latency_paced_by_farthest_replica():
    """The known Mencius trade-off: execution waits for every node's skips,
    so even local commits pay the farthest peer's delay."""
    cfg = Config.wan(("VA", "OH", "CA"), 3, seed=84)
    dep, res = run_protocol(
        Mencius, cfg, WorkloadSpec(keys=100), concurrency=3, duration=0.8, settle=0.5
    )
    # VA-CA RTT is 62 ms: nobody beats ~half of that plus a commit round.
    assert res.latency.p50 > 40
    assert_correct(dep)


def test_retransmission_recovers_from_drops(lan9):
    dep = Deployment(lan9).start(Mencius)
    dep.drop(NodeID(1, 1), NodeID(2, 1), duration=0.2, at=0.0)
    dep.drop(NodeID(1, 1), NodeID(2, 2), duration=0.2, at=0.0)
    client = dep.new_client()
    done = []
    client.invoke(Command.put("k", "v"), target=NodeID(1, 1), on_done=lambda r, l: done.append(r.value))
    dep.run_for(1.5)
    assert done == ["v"]
    assert_correct(dep)


def test_duplicate_request_served_from_cache(lan9):
    dep = Deployment(lan9).start(Mencius)
    from repro.paxi.message import ClientRequest, Command

    inbox = []
    dep.cluster.add_lightweight_endpoint("probe", "LAN", lambda s, m, b: inbox.append(m))
    request = ClientRequest(command=Command.put("k", "v"), client="probe", request_id=1)
    target = dep.config.node_ids[0]
    dep.cluster.network.transit("probe", target, request, 100)
    dep.run_for(0.1)
    dep.cluster.network.transit("probe", target, request, 100)
    dep.run_for(0.1)
    assert len(inbox) == 2
    assert dep.replicas[target].store.version("k") == 1
