"""Unit tests for the gray-failure capacity and detection models."""

import math

import pytest

from repro.core.grayfail import (
    degraded_follower_capacity,
    degraded_leader_capacity,
    phi_detection_time,
    quorum_wait_with_stragglers,
    slowdown_detection_heartbeats,
)
from repro.core.order_stats import expected_kth_normal_blom
from repro.errors import ModelError


class TestDegradedLeader:
    def test_leader_slowdown_caps_group(self):
        assert degraded_leader_capacity(6000.0, 6.0) == pytest.approx(1000.0)

    def test_unit_factor_is_identity(self):
        assert degraded_leader_capacity(1234.5, 1.0) == pytest.approx(1234.5)

    def test_validates(self):
        with pytest.raises(ModelError):
            degraded_leader_capacity(0.0, 2.0)
        with pytest.raises(ModelError):
            degraded_leader_capacity(100.0, 0.5)


class TestDegradedFollower:
    def test_single_slow_follower_is_free_with_majority_quorum(self):
        # 5 nodes, quorum 3: leader needs 2 of 4 follower replies and
        # 3 healthy followers remain -- the straggler never matters.
        assert degraded_follower_capacity(5000.0, 5, 3, 6.0) == 5000.0

    def test_capacity_drops_once_quorum_needs_a_straggler(self):
        # 3 nodes, quorum 3 (e.g. a FPaxos phase-1-heavy config): both
        # follower replies are required, so one straggler gates the group.
        assert degraded_follower_capacity(3000.0, 3, 3, 6.0) == pytest.approx(500.0)

    def test_boundary_exactly_enough_healthy(self):
        # 5 nodes, quorum 4, 1 degraded: 3 healthy followers == Q-1.
        assert degraded_follower_capacity(1000.0, 5, 4, 3.0, degraded=1) == 1000.0
        # One more degraded follower tips it over.
        assert degraded_follower_capacity(1000.0, 5, 4, 3.0, degraded=2) == pytest.approx(
            1000.0 / 3.0
        )

    def test_asymmetry_vs_leader(self):
        # The headline gray-failure asymmetry: same fault, opposite cost.
        cap = 2000.0
        assert degraded_follower_capacity(cap, 5, 3, 8.0) == cap
        assert degraded_leader_capacity(cap, 8.0) == pytest.approx(250.0)

    def test_validates(self):
        with pytest.raises(ModelError):
            degraded_follower_capacity(1000.0, 5, 3, 2.0, degraded=5)
        with pytest.raises(ModelError):
            degraded_follower_capacity(1000.0, 5, 1, 2.0)
        with pytest.raises(ModelError):
            degraded_follower_capacity(1000.0, 5, 3, 0.9)


class TestQuorumWait:
    def test_no_stragglers_matches_plain_order_statistic(self):
        want = expected_kth_normal_blom(2, 4, 1e-3, 1e-4)
        got = quorum_wait_with_stragglers(5, 3, 1e-3, 1e-4)
        assert got == pytest.approx(want)

    def test_straggler_off_critical_path_costs_little(self):
        clean = quorum_wait_with_stragglers(5, 3, 1e-3, 1e-4)
        one_slow = quorum_wait_with_stragglers(5, 3, 1e-3, 1e-4, 6.0, degraded=1)
        # Smaller healthy pool -> strictly larger order statistic...
        assert one_slow > clean
        # ...but nowhere near the 6x stretch of the degraded node.
        assert one_slow < 1.5 * clean

    def test_straggler_on_critical_path_dominates(self):
        clean = quorum_wait_with_stragglers(3, 3, 1e-3, 1e-4)
        forced = quorum_wait_with_stragglers(3, 3, 1e-3, 1e-4, 6.0, degraded=1)
        assert forced > 4.0 * clean

    def test_wait_monotone_in_degraded_count(self):
        waits = [
            quorum_wait_with_stragglers(7, 4, 1e-3, 1e-4, 5.0, degraded=d)
            for d in range(0, 6)
        ]
        assert waits == sorted(waits)

    def test_validates(self):
        with pytest.raises(ModelError):
            quorum_wait_with_stragglers(5, 6, 1e-3, 1e-4)
        with pytest.raises(ModelError):
            quorum_wait_with_stragglers(5, 3, -1.0, 1e-4)
        with pytest.raises(ModelError):
            quorum_wait_with_stragglers(5, 3, 1e-3, 1e-4, 0.5, degraded=1)


class TestPhiDetectionTime:
    def test_threshold_one_is_90th_percentile_silence(self):
        # phi = 1 means P(silence) = 10%: about mu + 1.28 sigma.
        t = phi_detection_time(0.02, 0.002, 1.0)
        assert t == pytest.approx(0.02 + 0.002 * 1.2816, rel=1e-3)

    def test_monotone_in_threshold(self):
        times = [phi_detection_time(0.02, 0.002, p) for p in (1.0, 4.0, 8.0, 12.0)]
        assert times == sorted(times)
        assert times[0] > 0.02

    def test_tighter_distribution_detects_sooner(self):
        assert phi_detection_time(0.02, 0.001, 8.0) < phi_detection_time(
            0.02, 0.01, 8.0
        )

    def test_default_deployment_detects_within_a_second(self):
        # The stock detector config: 20 ms heartbeats, LAN jitter, phi=8.
        t = phi_detection_time(0.02, 0.002, 8.0)
        assert 0.02 < t < 1.0

    def test_validates(self):
        with pytest.raises(ModelError):
            phi_detection_time(0.0, 0.002, 8.0)
        with pytest.raises(ModelError):
            phi_detection_time(0.02, 0.002, 0.0)


class TestSlowdownDetection:
    def test_strong_degradation_detected_quickly(self):
        # 6x slowdown against the stock 2.5x ratio fires within a handful
        # of heartbeats.
        n = slowdown_detection_heartbeats(6.0, 2.5)
        assert 1 <= n <= 10

    def test_ewma_crossing_is_exact(self):
        # Verify against a direct simulation of the fast EWMA.
        factor, ratio, alpha = 6.0, 2.5, 0.25
        n = slowdown_detection_heartbeats(factor, ratio, alpha)
        level = 1.0
        steps = 0
        while level < ratio:
            level += alpha * (factor - level)
            steps += 1
        assert n == steps

    def test_milder_degradation_takes_longer(self):
        assert slowdown_detection_heartbeats(3.0, 2.5) > slowdown_detection_heartbeats(
            8.0, 2.5
        )

    def test_subthreshold_degradation_raises(self):
        with pytest.raises(ModelError):
            slowdown_detection_heartbeats(2.0, 2.5)
        with pytest.raises(ModelError):
            slowdown_detection_heartbeats(2.5, 2.5)

    def test_validates_parameters(self):
        with pytest.raises(ModelError):
            slowdown_detection_heartbeats(6.0, 1.0)
        with pytest.raises(ModelError):
            slowdown_detection_heartbeats(6.0, 2.5, fast_alpha=1.0)


def test_wall_clock_detection_budget_composes():
    # End-to-end sanity: with 20 ms heartbeats a 6x-degraded leader is
    # flagged by the slowdown channel well before phi would ever accrue
    # (heartbeats keep arriving), and the whole budget stays under 1 s --
    # the premise behind the bench_grayfail recovery gate.
    hb = 0.02
    n = slowdown_detection_heartbeats(6.0, 2.5)
    assert n * hb < 1.0
    assert not math.isnan(phi_detection_time(hb, 0.002, 8.0))
