"""Cross-validation: the simulator's Server IS the queue the models assume.

The whole two-pronged method rests on the analytic queue formulas and the
simulated CPU+NIC server describing the same object.  Here we drive the
simulator's ``Server`` directly as an M/D/1 (and M/M/1) queue — Poisson
arrivals, constant (or exponential) service — and check the measured mean
wait against Table 1's closed forms.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.queueing import MD1, MM1
from repro.paxi.config import Config
from repro.sim.clock import EventLoop
from repro.sim.server import Server


def simulate_queue(arrival_rate, service, jobs=20_000, seed=1):
    """Poisson arrivals into a Server; ``service()`` draws each job's cost.
    Returns the measured mean queueing delay (excluding service)."""
    loop = EventLoop()
    server = Server(loop)
    rng = random.Random(seed)
    t = 0.0
    for _ in range(jobs):
        t += rng.expovariate(arrival_rate)
        loop.call_at(t, server.submit, service(rng), lambda: None)
    loop.run()
    return server.stats.mean_wait()


SERVICE_TIME = 125e-6  # the calibrated Paxos round, mu = 8000/s


@pytest.mark.parametrize("rho", [0.3, 0.6, 0.8, 0.9])
def test_server_matches_md1_formula(rho):
    lam = rho / SERVICE_TIME
    measured = simulate_queue(lam, lambda rng: SERVICE_TIME)
    predicted = MD1.from_service_time(SERVICE_TIME).wait_time(lam)
    assert measured == pytest.approx(predicted, rel=0.12)


@pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
def test_server_matches_mm1_formula(rho):
    lam = rho / SERVICE_TIME
    measured = simulate_queue(lam, lambda rng: rng.expovariate(1 / SERVICE_TIME))
    predicted = MM1(1 / SERVICE_TIME).wait_time(lam)
    assert measured == pytest.approx(predicted, rel=0.15)


def test_md1_beats_mm1_in_simulation_too():
    """The Table-1 ordering (deterministic service halves the wait) is a
    measured fact of the simulator, not just a formula."""
    lam = 0.7 / SERVICE_TIME
    deterministic = simulate_queue(lam, lambda rng: SERVICE_TIME)
    exponential = simulate_queue(lam, lambda rng: rng.expovariate(1 / SERVICE_TIME))
    assert deterministic < exponential
    assert deterministic == pytest.approx(exponential / 2, rel=0.25)


@settings(max_examples=10, deadline=None)
@given(rho=st.floats(min_value=0.1, max_value=0.85), seed=st.integers(0, 100))
def test_md1_formula_is_an_unbiased_predictor(rho, seed):
    lam = rho / SERVICE_TIME
    measured = simulate_queue(lam, lambda rng: SERVICE_TIME, jobs=8_000, seed=seed)
    predicted = MD1.from_service_time(SERVICE_TIME).wait_time(lam)
    # Short runs are noisy; bound the relative error generously.
    assert measured == pytest.approx(predicted, rel=0.5, abs=5e-6)


@settings(max_examples=20, deadline=None)
@given(
    zones=st.integers(1, 4),
    per_zone=st.integers(1, 4),
    seed=st.integers(0, 10_000),
    q2=st.integers(1, 4),
)
def test_config_json_roundtrip_property(zones, per_zone, seed, q2):
    """Any grid configuration round-trips through JSON losslessly."""
    original = Config.lan(zones, per_zone, seed=seed, q2_size=q2)
    restored = Config.from_json(original.to_json())
    assert restored.node_ids == original.node_ids
    assert restored.seed == original.seed
    assert restored.params == original.params
    assert restored.topology.sites == original.topology.sites
