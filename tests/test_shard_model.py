"""Sharded capacity model, benchmark accounting, and the CI gate."""

import json

import pytest

from repro.bench.nemesis import ALL_KINDS, FaultEvent, Nemesis
from repro.bench.shard_bench import ShardedClosedLoopBenchmark, ShardedDeploymentFactory
from repro.bench.workload import WorkloadSpec
from repro.core.protocol_models import BatchedPaxosModel, PaxosModel
from repro.core.sharding import ShardedCapacityModel
from repro.core.topology import lan
from repro.errors import ModelError, WorkloadError
from repro.experiments.bench_sharding import check_no_regression
from repro.paxi.config import Config
from repro.protocols.paxos import MultiPaxos
from repro.shard.placement import ShardSpec


class TestShardedCapacityModel:
    def test_pure_workload_scales_linearly(self):
        group = PaxosModel(lan(9))
        assert ShardedCapacityModel(group, shards=4).max_throughput() == pytest.approx(
            4 * group.max_throughput()
        )

    def test_cross_shard_mix_taxes_capacity(self):
        group = BatchedPaxosModel(lan(9), batch_size=16, batch_window=0.001)
        pure = ShardedCapacityModel(group, shards=4)
        mixed = ShardedCapacityModel(group, shards=4, cross_shard_ratio=0.25)
        # f=0.25 at 3 rounds/key: (0.75 + 0.25*3) = 1.5 rounds per op.
        assert mixed.rounds_per_op() == pytest.approx(1.5)
        assert mixed.max_throughput() == pytest.approx(pure.max_throughput() / 1.5)

    def test_capacity_curve_is_monotonically_decreasing(self):
        model = ShardedCapacityModel(PaxosModel(lan(9)), shards=4)
        curve = model.capacity_curve(max_ratio=0.5, points=6)
        capacities = [c for _f, c in curve]
        assert capacities == sorted(capacities, reverse=True)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"shards": 2, "cross_shard_ratio": 1.5},
            {"shards": 2, "cross_shard_ratio": -0.1},
            {"shards": 2, "txn_rounds": 0.5},
        ],
    )
    def test_domain_validation(self, kwargs):
        with pytest.raises(ModelError):
            ShardedCapacityModel(PaxosModel(lan(9)), **kwargs)


class TestShardedBenchmarkAccounting:
    def make_bench(self, txn_ratio=0.5, concurrency=4):
        cluster = ShardedDeploymentFactory(
            MultiPaxos, Config.lan(3, 3, seed=19), ShardSpec(count=2, buckets=8)
        )()
        return cluster, ShardedClosedLoopBenchmark(
            cluster,
            WorkloadSpec(keys=100, write_ratio=0.5),
            concurrency=concurrency,
            txn_ratio=txn_ratio,
        )

    def test_txn_mix_records_k_ops_per_commit(self):
        cluster, bench = self.make_bench(txn_ratio=1.0, concurrency=2)
        result = bench.run(duration=0.4, warmup=0.0, settle=0.3)
        assert bench.txns_committed > 0
        # Pure-txn run: every record comes from a 2-key commit.
        assert result.completed == pytest.approx(
            2 * bench.txns_committed, abs=2 * bench.txns_aborted + 2
        )
        assert bench.cross_shard_fraction() == pytest.approx(1.0)

    def test_zero_ratio_reduces_to_plain_closed_loop(self):
        cluster, bench = self.make_bench(txn_ratio=0.0)
        result = bench.run(duration=0.3, warmup=0.0, settle=0.3)
        assert bench.txns_committed == 0 and bench.txns_aborted == 0
        assert bench.cross_shard_fraction() == 0.0
        assert result.completed > 0

    def test_parameter_validation(self):
        cluster, _ = self.make_bench(txn_ratio=0.0)
        with pytest.raises(WorkloadError, match="txn_ratio"):
            ShardedClosedLoopBenchmark(cluster, WorkloadSpec(), txn_ratio=1.5)
        with pytest.raises(WorkloadError, match="txn_keys"):
            ShardedClosedLoopBenchmark(cluster, WorkloadSpec(), txn_keys=1)


class TestRebalanceFaultKind:
    def test_rebalance_is_a_known_kind_and_prints_itself(self):
        assert "rebalance" in ALL_KINDS
        event = FaultEvent("rebalance", 0.5, 0.0, bucket=7, to_shard=2)
        assert "bucket 7 -> shard 2" in str(event)

    def test_plain_nemesis_skips_rebalance_draws(self):
        from repro.paxi.deployment import Deployment

        nemesis = Nemesis(seed=3, events=10, kinds=("rebalance",))
        deployment = Deployment(Config.lan(3, 3, seed=3)).start(MultiPaxos)
        assert nemesis.unleash(deployment) == []


class TestShardingGate:
    def payload(self, **overrides):
        base = {
            "shards": 4,
            "single": {"knee": 28000.0},
            "sharded": {"knee": 113000.0},
            "model": {"knee_sharded": 115523.0},
            "txn_mix": [
                {"txn_ratio": 0.0, "measured_f": 0.0, "throughput": 111000.0},
                {"txn_ratio": 0.1, "measured_f": 0.1, "throughput": 84000.0},
            ],
        }
        base.update(overrides)
        return base

    def run_gate(self, tmp_path, payload):
        path = tmp_path / "BENCH_sharding.json"
        path.write_text(json.dumps(payload))
        check_no_regression(str(path))

    def test_healthy_baseline_passes(self, tmp_path, capsys):
        self.run_gate(tmp_path, self.payload())
        assert "sharding baseline ok" in capsys.readouterr().out

    def test_low_knee_ratio_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="knee ratio"):
            self.run_gate(tmp_path, self.payload(sharded={"knee": 56000.0}))

    def test_model_divergence_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="apart"):
            self.run_gate(tmp_path, self.payload(model={"knee_sharded": 200000.0}))

    def test_vanished_coordination_tax_fails(self, tmp_path):
        payload = self.payload()
        payload["txn_mix"][1]["throughput"] = 150000.0
        with pytest.raises(SystemExit, match="exceeds pure workload"):
            self.run_gate(tmp_path, payload)

    def test_missing_file_is_actionable(self, tmp_path):
        with pytest.raises(SystemExit, match="run the bench first"):
            check_no_regression(str(tmp_path / "missing.json"))

    def test_committed_baseline_passes_the_gate(self, capsys):
        check_no_regression("BENCH_sharding.json")
        assert "ok" in capsys.readouterr().out
