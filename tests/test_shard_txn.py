"""Cross-shard 2PC: commit, abort, lock conflicts, coordinator crashes.

Every crash point in ``CRASH_POINTS`` is exercised: the coordinator dies
mid-protocol, ``recover_txns()`` replays its WAL, and the atomicity
checker plus the per-key linearizability checker audit the aftermath.
"""

import pytest

from repro.checkers.txn import check_txn_atomicity
from repro.errors import TxnAborted
from repro.paxi.config import Config
from repro.protocols.paxos import MultiPaxos
from repro.shard.cluster import ShardedCluster
from repro.shard.placement import ShardSpec, lock_key
from repro.shard.txn import CRASH_POINTS, ShardedTxnRuntime


def make_cluster(seed=17, count=4, buckets=16):
    cluster = ShardedCluster(
        Config.lan(3, 3, seed=seed, shards=ShardSpec(count=count, buckets=buckets))
    ).start(MultiPaxos)
    cluster.run_for(0.3)
    return cluster


def settle(machine, cluster, max_wait=5.0):
    deadline = cluster.now + max_wait
    while machine.finished is None and not machine.dead and cluster.now < deadline:
        cluster.run_for(0.005)
    return machine.finished


class TestCommitAndAbort:
    def test_commit_applies_all_writes_and_releases_locks(self):
        cluster = make_cluster()
        runtime = ShardedTxnRuntime(cluster)
        writes = {f"k{i}": f"v{i}" for i in range(5)}
        result = runtime.run(writes, reads=[])
        assert result.ok
        session = cluster.new_session()
        for key, value in writes.items():
            assert session.get(key).value == value
        check = check_txn_atomicity(cluster)
        assert check.ok and check.checked == 1

    def test_reads_return_snapshot_values_under_locks(self):
        cluster = make_cluster()
        session = cluster.new_session()
        session.put("a", "1")
        session.put("b", "2")
        result = ShardedTxnRuntime(cluster).run({"c": "3"}, reads=["a", "b"])
        assert result.values == {"a": "1", "b": "2"}

    def test_lock_conflict_aborts_the_later_transaction(self):
        cluster = make_cluster()
        first = ShardedTxnRuntime(cluster)
        second = ShardedTxnRuntime(cluster)
        machine_a = first.begin({"x": "a1", "y": "a2"}, [])
        machine_b = second.begin({"y": "b1", "z": "b2"}, [])
        for _ in range(2000):
            if machine_a.finished is not None and machine_b.finished is not None:
                break
            cluster.run_for(0.005)
        outcomes = sorted(
            m.finished.ok for m in (machine_a, machine_b) if m.finished is not None
        )
        assert outcomes == [False, True]  # exactly one wins the overlap
        loser = machine_a if not machine_a.finished.ok else machine_b
        assert "lock-conflict" in loser.finished.reason
        cluster.run_for(0.3)  # let the lock releases replicate everywhere
        check = check_txn_atomicity(cluster)
        assert check.ok, check.violations
        ok, groups_ok = cluster.verify()
        assert ok and groups_ok

    def test_sync_runtime_raises_typed_abort(self):
        cluster = make_cluster()
        blocker = ShardedTxnRuntime(cluster)
        machine = blocker.begin({"w": "held"}, [], crash_at="after_locks")
        settle(machine, cluster, max_wait=1.0)
        with pytest.raises(TxnAborted, match="lock-conflict"):
            ShardedTxnRuntime(cluster).run({"w": "mine"}, [])


class TestCoordinatorCrashRecovery:
    @pytest.mark.parametrize("crash_at", CRASH_POINTS)
    def test_every_crash_point_recovers_atomically(self, crash_at):
        cluster = make_cluster(seed=29)
        runtime = ShardedTxnRuntime(cluster)
        writes = {f"c{i}": f"{crash_at}-{i}" for i in range(4)}
        machine = runtime.begin(writes, [], crash_at=crash_at)
        settle(machine, cluster, max_wait=2.0)
        assert machine.dead and machine.finished is None
        # Before recovery the WAL is unresolved.
        assert not check_txn_atomicity(cluster).ok
        actions = cluster.recover_txns()
        assert len(actions) == 1
        txn_id, outcome = actions[0]
        assert txn_id == machine.txn_id
        committed = any(r[0] == "commit" for r in cluster.txn_wal[txn_id])
        assert outcome == ("rolled-forward" if committed else "aborted")
        cluster.run_for(0.3)
        check = check_txn_atomicity(cluster)
        assert check.ok, (crash_at, check.violations)
        session = cluster.new_session()
        for key, value in writes.items():
            observed = session.get(key).value
            assert observed == (value if committed else None), (crash_at, key)
        # Locks are free again: a fresh transaction over the same keys wins.
        assert ShardedTxnRuntime(cluster).run({k: v + "+2" for k, v in writes.items()}, []).ok
        ok, groups_ok = cluster.verify()
        assert ok and groups_ok, crash_at

    def test_recovery_is_idempotent(self):
        cluster = make_cluster(seed=31)
        machine = ShardedTxnRuntime(cluster).begin({"p": "1", "q": "2"}, [], crash_at="after_commit")
        settle(machine, cluster, max_wait=2.0)
        assert cluster.recover_txns()
        assert cluster.recover_txns() == []  # second pass: nothing left

    def test_crash_leaves_lock_visible_until_recovery(self):
        cluster = make_cluster(seed=37)
        machine = ShardedTxnRuntime(cluster).begin({"locked-key": "v"}, [], crash_at="after_locks")
        settle(machine, cluster, max_wait=2.0)
        group = cluster.group(cluster.shard_of("locked-key"))
        holders = {
            replica.store.read(lock_key("locked-key"))
            for replica in group.replicas.values()
        }
        assert machine.txn_id in holders
        cluster.recover_txns()
        cluster.run_for(0.3)
        holders = {
            replica.store.read(lock_key("locked-key"))
            for replica in group.replicas.values()
        }
        assert holders == {None}
