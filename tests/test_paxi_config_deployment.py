"""Tests for configuration and deployment wiring."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID, grid_ids
from repro.paxi.message import ClientReply, ClientRequest, Command
from repro.paxi.node import Replica
from repro.core import topology as topo


class Echo(Replica):
    """Minimal protocol: executes every request locally and replies."""

    def __init__(self, deployment, node_id):
        super().__init__(deployment, node_id)
        self.register(ClientRequest, self.on_request)

    def on_request(self, src, m):
        value = self.store.execute(m.command)
        self.send(
            m.client,
            ClientReply(request_id=m.request_id, ok=True, value=value, replied_by=self.id),
        )


class TestConfig:
    def test_lan_builder(self):
        cfg = Config.lan(3, 3)
        assert cfg.n == 9
        assert cfg.zones == [1, 2, 3]
        assert cfg.site_of(NodeID(2, 2)) == "LAN"

    def test_wan_builder_zone_sites(self):
        cfg = Config.wan(("VA", "OH", "CA"), 3)
        assert cfg.zone_site(1) == "VA"
        assert cfg.zone_site(3) == "CA"
        assert cfg.ids_in_site("OH") == [NodeID(2, n) for n in (1, 2, 3)]

    def test_params_passthrough(self):
        cfg = Config.lan(1, 3, q2_size=2)
        assert cfg.param("q2_size") == 2
        assert cfg.param("missing", "dflt") == "dflt"

    def test_mismatched_ids_and_topology(self):
        with pytest.raises(ConfigError):
            Config(topology=topo.lan(3), node_ids=grid_ids(1, 2))

    def test_duplicate_ids_rejected(self):
        ids = (NodeID(1, 1), NodeID(1, 1))
        with pytest.raises(ConfigError):
            Config(topology=topo.lan(2), node_ids=ids)

    def test_ids_in_zone(self):
        cfg = Config.lan(2, 2)
        assert cfg.ids_in_zone(2) == [NodeID(2, 1), NodeID(2, 2)]

    def test_zone_site_unknown_zone(self):
        with pytest.raises(ConfigError):
            Config.lan(2, 2).zone_site(9)


class TestDeployment:
    def test_start_builds_all_replicas(self):
        dep = Deployment(Config.lan(2, 2)).start(Echo)
        assert set(dep.replicas) == set(grid_ids(2, 2))

    def test_double_start_rejected(self):
        dep = Deployment(Config.lan(1, 2)).start(Echo)
        with pytest.raises(SimulationError):
            dep.start(Echo)

    def test_round_trip_through_echo(self):
        dep = Deployment(Config.lan(1, 3)).start(Echo)
        client = dep.new_client()
        replies = []
        client.invoke(Command.put("k", "v"), on_done=lambda r, lat: replies.append((r.value, lat)))
        dep.run_for(0.05)
        assert len(replies) == 1
        value, latency = replies[0]
        assert value == "v"
        assert 0.0001 < latency < 0.002  # ~ one local RTT

    def test_client_site_round_robin(self):
        dep = Deployment(Config.wan(("VA", "OH"), 1)).start(Echo)
        sites = [dep.new_client().site for _ in range(4)]
        assert sites == ["VA", "OH", "VA", "OH"]

    def test_client_by_zone(self):
        dep = Deployment(Config.wan(("VA", "OH"), 1)).start(Echo)
        assert dep.new_client(zone=2).site == "OH"

    def test_client_unknown_site(self):
        dep = Deployment(Config.lan(1, 1)).start(Echo)
        with pytest.raises(ConfigError):
            dep.new_client(site="Atlantis")

    def test_nearest_nodes_sorted_by_distance(self):
        dep = Deployment(Config.wan(("VA", "OH", "CA"), 1)).start(Echo)
        ranked = dep.nearest_nodes("CA")
        assert dep.config.site_of(ranked[0]) == "CA"
        assert dep.config.site_of(ranked[1]) == "OH"  # OH-CA 52 < VA-CA 62

    def test_clients_spread_over_equidistant_nodes(self):
        dep = Deployment(Config.lan(1, 4)).start(Echo)
        firsts = {dep.new_client()._preferred[0] for _ in range(4)}
        assert len(firsts) == 4

    def test_determinism_same_seed_same_history(self):
        def run(seed):
            dep = Deployment(Config.lan(1, 3, seed=seed)).start(Echo)
            client = dep.new_client()
            for i in range(5):
                client.invoke(Command.put("k", f"v{i}"))
            dep.run_for(0.1)
            return [(op.value, op.returned_at) for op in dep.history.operations]

        assert run(3) == run(3)
        assert run(3) != run(4)


class TestReplicaRuntime:
    def test_duplicate_handler_rejected(self):
        from repro.errors import ProtocolError

        dep = Deployment(Config.lan(1, 1))

        class Bad(Echo):
            def __init__(self, deployment, node_id):
                super().__init__(deployment, node_id)
                self.register(ClientRequest, self.on_request)

        with pytest.raises(ProtocolError):
            dep.start(Bad)

    def test_unhandled_message_raises(self):
        from repro.errors import ProtocolError

        class Mute(Replica):
            pass

        dep = Deployment(Config.lan(1, 2)).start(Mute)
        ids = dep.config.node_ids
        dep.replicas[ids[0]].send(ids[1], ClientRequest())
        with pytest.raises(ProtocolError):
            dep.run_for(0.01)

    def test_zone_peers(self):
        dep = Deployment(Config.lan(2, 3)).start(Echo)
        replica = dep.replicas[NodeID(1, 2)]
        assert replica.zone_peers() == [NodeID(1, 1), NodeID(1, 3)]
        assert len(replica.peers) == 5

    def test_broadcast_reaches_everyone_once(self):
        received = []

        class Gossip(Replica):
            def __init__(self, deployment, node_id):
                super().__init__(deployment, node_id)
                self.register(ClientRequest, self.on_request)

            def on_request(self, src, m):
                received.append(self.id)

        dep = Deployment(Config.lan(1, 4)).start(Gossip)
        ids = dep.config.node_ids
        dep.replicas[ids[0]].broadcast(ClientRequest())
        dep.run_for(0.05)
        assert sorted(received) == sorted(ids[1:])

    def test_local_work_charges_queue(self):
        dep = Deployment(Config.lan(1, 1)).start(Echo)
        replica = dep.replicas[NodeID(1, 1)]
        done = []
        replica.local_work(0.5, lambda: done.append(dep.now))
        dep.run_for(1.0)
        assert done == [0.5]
