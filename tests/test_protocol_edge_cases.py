"""Edge-case tests for protocol internals not reachable on happy paths."""

from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID, grid_ids
from repro.paxi.message import Command
from repro.paxi.quorum import FastQuorum, GridQuorum
from repro.protocols.epaxos import COMMITTED, EXECUTED, Accept, CommitMsg, EPaxos
from repro.protocols.log import RequestInfo
from repro.protocols.paxos import MultiPaxos, P2a
from repro.protocols.ballot import Ballot
from repro.protocols.raft import AppendEntries, Raft


class TestQuorumDefeat:
    def test_grid_quorum_defeated_by_zone_loss(self):
        ids = grid_ids(3, 3)
        q = GridQuorum(ids, phase=1, f=1, fz=0)  # needs 2 acks in all 3 zones
        # Two nacks in one zone make phase-1 unsatisfiable.
        q.nack(NodeID(2, 1))
        q.nack(NodeID(2, 2))
        assert q.defeated()

    def test_fast_quorum_defeated(self):
        ids = grid_ids(1, 4)
        q = FastQuorum(ids, size=3)
        q.nack(ids[0])
        assert not q.defeated()
        q.nack(ids[1])
        assert q.defeated()


class TestRaftLogRepair:
    def test_conflicting_suffix_truncated(self):
        dep = Deployment(Config.lan(1, 3, seed=1)).start(Raft)
        dep.run_for(0.05)
        follower = dep.replicas[NodeID(1, 3)]
        # Hand the follower a bogus suffix from a dead divergent leader.
        follower.log = [
            (1, (1, Command.put("k", "good"), None)),
            (2, (99, Command.put("k", "bogus"), None)),
        ]
        leader_record = (1, Command.put("k", "truth"), None)
        follower.on_append_entries(
            NodeID(1, 1),
            AppendEntries(
                term=follower.term,
                prev_index=1,
                prev_term=1,
                entries=((2, leader_record),),
                leader_commit=0,
            ),
        )
        assert follower.log[1][1][1].value == "truth"
        assert len(follower.log) == 2

    def test_append_from_stale_term_rejected(self):
        dep = Deployment(Config.lan(1, 3, seed=2)).start(Raft)
        dep.run_for(0.05)
        follower = dep.replicas[NodeID(1, 2)]
        follower.term = 10
        before = list(follower.log)
        follower.on_append_entries(
            NodeID(1, 3),
            AppendEntries(term=3, prev_index=0, prev_term=0, entries=(), leader_commit=0),
        )
        assert follower.log == before
        assert follower.term == 10


class TestEPaxosOutOfOrderDelivery:
    def test_commit_before_preaccept_creates_instance(self):
        dep = Deployment(Config.lan(1, 3, seed=3)).start(EPaxos)
        replica = dep.replicas[NodeID(1, 2)]
        instance = (NodeID(1, 1), 1)
        replica.on_commit(
            NodeID(1, 1),
            CommitMsg(instance=instance, command=Command.put("k", "v"), deps=frozenset(), seq=1),
        )
        record = replica._instances[instance]
        assert record.status == EXECUTED  # no deps: executes immediately
        assert replica.store.read("k") == "v"

    def test_accept_before_preaccept_creates_instance(self):
        dep = Deployment(Config.lan(1, 3, seed=4)).start(EPaxos)
        replica = dep.replicas[NodeID(1, 2)]
        instance = (NodeID(1, 1), 1)
        replica.on_accept(
            NodeID(1, 1),
            Accept(instance=instance, command=Command.put("k", "v"), deps=frozenset(), seq=1),
        )
        assert replica._instances[instance].status == "accepted"
        assert replica.store.read("k") is None  # not committed yet

    def test_execution_blocks_on_unknown_dependency(self):
        dep = Deployment(Config.lan(1, 3, seed=5)).start(EPaxos)
        replica = dep.replicas[NodeID(1, 2)]
        ghost = (NodeID(1, 3), 42)
        instance = (NodeID(1, 1), 1)
        replica.on_commit(
            NodeID(1, 1),
            CommitMsg(
                instance=instance,
                command=Command.put("k", "v"),
                deps=frozenset({ghost}),
                seq=2,
            ),
        )
        assert replica._instances[instance].status == COMMITTED  # not executed
        # The ghost dependency arrives and commits: now both execute.
        replica.on_commit(
            NodeID(1, 3),
            CommitMsg(instance=ghost, command=Command.put("k", "older"), deps=frozenset(), seq=1),
        )
        assert replica._instances[instance].status == EXECUTED
        assert replica.store.history("k") == ["older", "v"]


class TestPaxosStaleMessages:
    def test_stale_p2a_gets_nack(self):
        dep = Deployment(Config.lan(1, 3, seed=6)).start(MultiPaxos)
        dep.run_for(0.05)
        follower = dep.replicas[NodeID(1, 2)]
        stale = Ballot(0, NodeID(1, 3))
        follower.on_p2a(
            NodeID(1, 3),
            P2a(ballot=stale, slot=1, command=Command.put("k", "x"), request=None, commit_upto=0),
        )
        # The stale proposal must not be accepted into the log.
        entry = follower.log.entries.get(1)
        assert entry is None or entry.command is None or entry.command.value != "x"

    def test_duplicate_p2b_acks_idempotent(self):
        dep = Deployment(Config.lan(1, 3, seed=7)).start(MultiPaxos)
        dep.run_for(0.05)
        leader = dep.replicas[NodeID(1, 1)]
        leader._propose(Command.put("k", "v"), RequestInfo("nobody", 1))
        slot = leader.log.next_slot - 1
        from repro.protocols.paxos import P2b

        for _ in range(5):
            leader.on_p2b(NodeID(1, 2), P2b(ballot=leader.ballot, slot=slot, ok=True))
        entry = leader.log.entries[slot]
        assert len(entry.quorum.acks) == 2  # self + 1.2, not 6
