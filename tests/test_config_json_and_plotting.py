"""Tests for JSON configuration round trips, Deployment.verify, plotting."""

import pytest

from repro.errors import ConfigError
from repro.experiments.common import ExperimentResult
from repro.experiments.plotting import ascii_chart, plot_result
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import Command
from repro.protocols.paxos import MultiPaxos
from repro.sim.server import ServiceProfile


class TestConfigJson:
    def test_lan_roundtrip(self):
        original = Config.lan(3, 3, seed=42, q2_size=3, thrifty=True)
        restored = Config.from_json(original.to_json())
        assert restored.n == original.n
        assert restored.seed == 42
        assert restored.params == original.params
        assert restored.topology.sites == ("LAN",)

    def test_wan_roundtrip(self):
        original = Config.wan(("VA", "OH", "CA"), 3, seed=7, fz=1)
        restored = Config.from_json(original.to_json())
        assert restored.topology.sites == ("VA", "OH", "CA")
        assert restored.param("fz") == 1
        assert restored.node_ids == original.node_ids

    def test_node_id_params_roundtrip(self):
        original = Config.lan(3, 3, leader=NodeID(2, 1))
        restored = Config.from_json(original.to_json())
        assert restored.param("leader") == NodeID(2, 1)
        assert isinstance(restored.param("leader"), NodeID)

    def test_profile_roundtrip(self):
        profile = ServiceProfile(t_in=5e-6, t_out=7e-6)
        original = Config.lan(1, 3, profile=profile)
        restored = Config.from_json(original.to_json())
        assert restored.profile.t_in == pytest.approx(5e-6)
        assert restored.profile.t_out == pytest.approx(7e-6)

    def test_restored_config_actually_runs(self):
        restored = Config.from_json(Config.lan(1, 3, seed=5).to_json())
        dep = Deployment(restored).start(MultiPaxos)
        client = dep.new_client()
        seen = []
        dep.run_for(0.01)
        client.invoke(Command.put("k", 1), on_done=lambda r, l: seen.append(r.value))
        dep.run_for(0.05)
        assert seen == [1]

    def test_malformed_json_rejected(self):
        with pytest.raises(ConfigError):
            Config.from_json("{not json")


class TestDeploymentVerify:
    def test_verify_clean_run(self):
        dep = Deployment(Config.lan(1, 3, seed=1)).start(MultiPaxos)
        client = dep.new_client()
        dep.run_for(0.01)
        client.invoke(Command.put("k", "v"))
        dep.run_for(0.05)
        client.invoke(Command.get("k"))
        dep.run_for(0.05)
        assert dep.verify() == (True, True)


class TestPlotting:
    def test_chart_contains_marks_and_axes(self):
        chart = ascii_chart({"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]})
        assert "o" in chart and "x" in chart
        assert "o=a" in chart and "x=b" in chart
        assert "[0 .. 1]" in chart

    def test_constant_series_no_division_by_zero(self):
        chart = ascii_chart({"flat": [(0, 5), (1, 5), (2, 5)]})
        assert "o" in chart

    def test_non_finite_points_skipped(self):
        chart = ascii_chart({"s": [(0, float("inf")), (1, 2)]})
        assert "o" in chart

    def test_all_non_finite(self):
        assert "no finite data" in ascii_chart({"s": [(0, float("nan"))]})

    def test_plot_result_empty(self):
        result = ExperimentResult("x", "t", ["a"])
        assert "no series" in plot_result(result)

    def test_plot_result_caps_series(self):
        result = ExperimentResult("x", "t", ["a"])
        for i in range(12):
            result.series[f"s{i}"] = [(0, i), (1, i)]
        chart = plot_result(result)
        assert "s0" in chart and "s7" in chart and "s8" not in chart
