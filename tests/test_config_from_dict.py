"""Config.from_dict / from_file validation and the typed batching knobs.

Every rejected document must produce a ConfigError whose message names the
offending field and says how to fix it — the "actionable errors" contract.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.paxi.config import Config


def test_from_dict_minimal_defaults():
    cfg = Config.from_dict({})
    assert cfg.n == 9
    assert cfg.batch_size == 1 and cfg.batch_window is None
    assert cfg.pipeline_depth is None
    assert not cfg.batching_enabled


def test_from_dict_batching_fields_round_trip():
    cfg = Config.from_dict(
        {"batch_size": 16, "batch_window": 0.001, "pipeline_depth": 8}
    )
    assert cfg.batch_size == 16
    assert cfg.batch_window == pytest.approx(0.001)
    assert cfg.pipeline_depth == 8
    assert cfg.batching_enabled
    again = Config.from_json(cfg.to_json())
    assert (again.batch_size, again.batch_window, again.pipeline_depth) == (
        cfg.batch_size,
        cfg.batch_window,
        cfg.pipeline_depth,
    )


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ConfigError, match="unknown configuration key"):
        Config.from_dict({"batchsize": 8})


def test_from_dict_rejects_unknown_protocol():
    with pytest.raises(ConfigError, match="unknown protocol"):
        Config.from_dict({"protocol": "quorumania"})


def test_from_dict_canonicalizes_protocol_name():
    cfg = Config.from_dict({"protocol": "wpaxos"})
    assert cfg.params["protocol"] == "WPaxos"


def test_from_dict_rejects_non_intersecting_quorum():
    with pytest.raises(ConfigError, match="cannot intersect"):
        Config.from_dict({"params": {"q2_size": 2, "q1_size": 3}})
    # A valid FPaxos-style quorum passes.
    cfg = Config.from_dict({"params": {"q2_size": 3}})
    assert cfg.params["q2_size"] == 3


def test_from_dict_rejects_negative_batch_window():
    with pytest.raises(ConfigError, match="batch_window"):
        Config.from_dict({"batch_window": -0.5})


def test_from_dict_rejects_batch_knobs_inside_params():
    with pytest.raises(ConfigError, match="move them out of 'params'"):
        Config.from_dict({"params": {"batch_size": 8}})


def test_from_dict_wan_needs_matching_regions():
    with pytest.raises(ConfigError, match="regions"):
        Config.from_dict({"deployment": "wan"})
    with pytest.raises(ConfigError, match="disagrees"):
        Config.from_dict({"deployment": "wan", "regions": ["VA", "OH"], "zones": 3})
    cfg = Config.from_dict({"deployment": "wan", "regions": ["VA", "OH", "CA"]})
    assert cfg.topology.sites == ("VA", "OH", "CA")


def test_from_dict_rejects_bad_shapes():
    with pytest.raises(ConfigError, match="mapping"):
        Config.from_dict(["not", "a", "dict"])
    with pytest.raises(ConfigError, match="nodes_per_zone"):
        Config.from_dict({"nodes_per_zone": 0})
    with pytest.raises(ConfigError, match="batch_size"):
        Config.from_dict({"batch_size": "lots"})
    with pytest.raises(ConfigError, match="unknown profile key"):
        Config.from_dict({"profile": {"t_inn": 1e-5}})


def test_from_file_round_trip(tmp_path):
    path = tmp_path / "cluster.json"
    path.write_text(Config.lan(3, 3, seed=9, batch_size=8, batch_window=0.002).to_json())
    cfg = Config.from_file(path)
    assert cfg.seed == 9 and cfg.batch_size == 8


def test_from_file_missing_is_actionable(tmp_path):
    with pytest.raises(ConfigError, match="cannot read configuration file"):
        Config.from_file(tmp_path / "nope.json")


def test_from_json_rejects_malformed_text():
    with pytest.raises(ConfigError, match="malformed"):
        Config.from_json("{not json")


def test_constructor_validates_typed_batch_fields():
    with pytest.raises(ConfigError, match="batch_size"):
        Config.lan(3, 3, batch_size=0)
    with pytest.raises(ConfigError, match="batch_window"):
        Config.lan(3, 3, batch_window=-1.0)
    with pytest.raises(ConfigError, match="pipeline_depth"):
        Config.lan(3, 3, pipeline_depth=0)
