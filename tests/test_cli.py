"""Tests for the two CLIs: repro.bench and repro.experiments."""

import pytest

from repro.bench.__main__ import main as bench_main
from repro.experiments.__main__ import main as experiments_main


class TestBenchCli:
    def test_lan_paxos_run(self, capsys):
        code = bench_main(
            ["--protocol", "paxos", "--clients", "4", "--duration", "0.2", "--check"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "throughput:" in out
        assert "linearizable: True" in out
        assert "consensus:    True" in out

    def test_wan_deployment(self, capsys):
        code = bench_main(
            [
                "--protocol", "wpaxos",
                "--wan", "VA", "OH",
                "--clients", "2",
                "--duration", "0.3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "WAN VA/OH" in out
        assert "VA:" in out and "OH:" in out

    def test_conflicts_accepts_percent_or_fraction(self, capsys):
        for value in ("40", "0.4"):
            code = bench_main(
                [
                    "--protocol", "paxos",
                    "--clients", "2",
                    "--duration", "0.1",
                    "--conflicts", value,
                    "--keys", "10",
                ]
            )
            assert code == 0

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            bench_main(["--protocol", "zab"])

    def test_every_registered_protocol_runs(self, capsys):
        from repro.bench.__main__ import PROTOCOLS

        for name in PROTOCOLS:
            assert (
                bench_main(
                    ["--protocol", name, "--clients", "2", "--duration", "0.1", "--keys", "20"]
                )
                == 0
            ), name


class TestExperimentsCli:
    def test_plot_flag(self, capsys):
        assert experiments_main(["table1", "--fast", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "M/D/1" in out
        assert "+---" in out  # the chart's x axis

    def test_csv_flag(self, tmp_path, capsys):
        assert experiments_main(["table4", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "table4.csv").exists()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            experiments_main(["fig99"])
