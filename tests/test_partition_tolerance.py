"""Network-partition tests (the fault class the paper lists as hardest to
produce on real clusters and trivial in a simulated transport)."""

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import Command
from repro.protocols.paxos import MultiPaxos
from repro.protocols.raft import LEADER, Raft

from tests.conftest import assert_correct


def _split(deployment, minority: list[NodeID], duration: float, at: float) -> None:
    everyone = set(deployment.config.node_ids) | {
        client.address for client in deployment.clients
    }
    majority_side = everyone - set(minority)
    deployment.cluster.partition([set(minority), majority_side], duration, at)


def test_paxos_majority_side_keeps_committing():
    cfg = Config.lan(3, 3, seed=61)
    dep = Deployment(cfg).start(MultiPaxos)
    bench = ClosedLoopBenchmark(dep, WorkloadSpec(keys=10), concurrency=4, retry_timeout=0.4)
    # Partition away 4 nodes (leader keeps a 5-node majority).
    minority = [NodeID(2, 2), NodeID(2, 3), NodeID(3, 2), NodeID(3, 3)]
    _split(dep, minority, duration=0.5, at=0.3)
    result = bench.run(duration=1.2, warmup=0.1, settle=0.05)
    during = [
        op for op in dep.history.operations if 0.4 < op.returned_at < 0.8
    ]
    assert len(during) > 200  # majority side barely noticed
    dep.run_for(1.0)  # heal + repair
    assert_correct(dep)


def test_paxos_leader_in_minority_stalls_until_heal():
    """Elections disabled: a leader cut off from the majority cannot commit
    (safety over liveness), and catches up after the partition heals."""
    cfg = Config.lan(3, 3, seed=62)
    dep = Deployment(cfg).start(MultiPaxos)
    client = dep.new_client()
    dep.run_for(0.05)
    client.invoke(Command.put("k", "before"))
    dep.run_for(0.05)
    # Leader 1.1 and the client alone on one side.
    minority = [NodeID(1, 1)]
    everyone = set(dep.config.node_ids) | {client.address}
    dep.cluster.partition(
        [{NodeID(1, 1), client.address}, everyone - {NodeID(1, 1), client.address}],
        duration=0.5,
        at=dep.now,
    )
    done = []
    client.invoke(Command.put("k", "during"), on_done=lambda r, l: done.append(r.value))
    dep.run_for(0.3)
    assert done == []  # no majority, no commit
    dep.run_for(1.0)  # heal: the accept finally gathers its quorum
    assert done == ["during"]
    assert_correct(dep)


def test_wpaxos_owner_recovers_after_partition():
    """An owner partitioned from its zone retransmits the lost accepts once
    the partition heals (the liveness path added for drops/partitions)."""
    from repro.protocols.wpaxos import WPaxos

    cfg = Config.lan(3, 3, seed=64)
    dep = Deployment(cfg).start(WPaxos)
    client = dep.new_client()
    client.invoke(Command.put("obj", "seed"), target=NodeID(1, 1))
    dep.run_for(0.05)
    # Cut the owner off from everyone (its fz=0 quorum needs a zone-mate).
    everyone = set(dep.config.node_ids) | {client.address}
    dep.cluster.partition(
        [{NodeID(1, 1), client.address}, everyone - {NodeID(1, 1), client.address}],
        duration=0.5,
        at=dep.now,
    )
    done = []
    client.invoke(Command.put("obj", "during"), target=NodeID(1, 1), on_done=lambda r, l: done.append(r.value))
    dep.run_for(0.3)
    assert done == []
    dep.run_for(1.5)  # heal; retransmission completes the round
    assert done == ["during"]
    assert_correct(dep)


def test_raft_elects_on_majority_side_of_partition():
    cfg = Config.lan(3, 3, seed=63)
    dep = Deployment(cfg).start(Raft)
    bench = ClosedLoopBenchmark(dep, WorkloadSpec(keys=10), concurrency=4, retry_timeout=0.3)
    # Isolate the leader (1.1) alone; the other 8 elect a replacement.
    everyone = set(dep.config.node_ids) | {
        ("client", i) for i in range(1, 6)
    }
    dep.cluster.partition(
        [{NodeID(1, 1)}, everyone - {NodeID(1, 1)}], duration=1.2, at=0.3
    )
    result = bench.run(duration=2.0, warmup=0.1, settle=0.05)
    leaders = [r.id for r in dep.replicas.values() if r.state == LEADER and r.id != NodeID(1, 1)]
    assert leaders  # someone else took over
    late = [op for op in dep.history.operations if op.returned_at > 1.0]
    assert len(late) > 100
    dep.run_for(1.0)
    assert_correct(dep)
