"""Unit tests for the φ-accrual detector and adaptive timeouts."""

import random

import pytest

from repro.errors import SimulationError
from repro.paxi.detector import (
    DEGRADED,
    FAILED,
    HEALTHY,
    PHI_CAP,
    AdaptiveTimeout,
    NodeHealthMonitor,
    PhiAccrualDetector,
)


def _feed_regular(detector, start, interval, count, jitter=0.0, rng=None):
    now = start
    for _ in range(count):
        detector.observe(now)
        step = interval
        if jitter:
            step += rng.uniform(-jitter, jitter)
        now += step
    return now


class TestPhiAccrual:
    def test_unseen_peer_is_not_suspect(self):
        detector = PhiAccrualDetector()
        assert detector.phi(100.0) == 0.0

    def test_phi_low_right_after_heartbeat(self):
        detector = PhiAccrualDetector()
        now = _feed_regular(detector, 0.0, 0.02, 50)
        assert detector.phi(now - 0.02 + 0.001) < 1.0

    def test_phi_rises_with_silence(self):
        detector = PhiAccrualDetector()
        now = _feed_regular(detector, 0.0, 0.02, 50)
        last = now - 0.02
        phis = [detector.phi(last + t) for t in (0.02, 0.05, 0.1, 0.3)]
        assert phis == sorted(phis)
        assert phis[-1] >= 8.0

    def test_phi_capped(self):
        detector = PhiAccrualDetector()
        _feed_regular(detector, 0.0, 0.02, 50)
        assert detector.phi(1e6) == PHI_CAP

    def test_adapts_to_jittery_links(self):
        # The same silence is far less suspicious on a noisy link: that is
        # the whole point of accrual detection vs a fixed timeout.
        rng = random.Random(7)
        quiet = PhiAccrualDetector(min_stddev=1e-4)
        noisy = PhiAccrualDetector(min_stddev=1e-4)
        quiet_end = _feed_regular(quiet, 0.0, 0.02, 200, jitter=0.0005, rng=rng)
        noisy_end = _feed_regular(noisy, 0.0, 0.02, 200, jitter=0.015, rng=rng)
        silence = 0.06
        assert quiet.phi(quiet_end - 0.02 + silence) > noisy.phi(
            noisy_end - 0.02 + silence
        )

    def test_slowdown_tracks_degradation_and_does_not_renormalize(self):
        detector = PhiAccrualDetector()
        now = _feed_regular(detector, 0.0, 0.02, 100)
        assert detector.slowdown() == pytest.approx(1.0, abs=0.01)
        # The peer degrades 6x: intervals stretch from 20 ms to 120 ms.
        _feed_regular(detector, now, 0.12, 100)
        assert detector.slowdown() > 2.5

    def test_backwards_clock_step_does_not_poison_window(self):
        detector = PhiAccrualDetector()
        now = _feed_regular(detector, 0.0, 0.02, 20)
        detector.observe(now - 5.0)  # skew fault stepped the clock back
        assert detector.mean() == pytest.approx(0.02, rel=0.01)

    def test_reset(self):
        detector = PhiAccrualDetector()
        _feed_regular(detector, 0.0, 0.02, 20)
        detector.reset()
        assert detector.samples == 0
        assert detector.phi(100.0) == 0.0

    def test_window_bounds_memory(self):
        detector = PhiAccrualDetector(window=16)
        _feed_regular(detector, 0.0, 0.02, 100)
        assert detector.samples == 16


class TestAdaptiveTimeout:
    def test_initial_before_samples(self):
        timeout = AdaptiveTimeout(initial=0.33)
        assert timeout.timeout == 0.33

    def test_converges_to_srtt_plus_4_rttvar(self):
        timeout = AdaptiveTimeout(floor=0.001, ceiling=10.0)
        rng = random.Random(3)
        for _ in range(500):
            timeout.observe(0.05 + rng.uniform(-0.005, 0.005))
        assert 0.05 < timeout.timeout < 0.09
        assert timeout.srtt == pytest.approx(0.05, rel=0.05)

    def test_spike_widens_then_recovers(self):
        timeout = AdaptiveTimeout(floor=0.001, ceiling=10.0)
        for _ in range(50):
            timeout.observe(0.02)
        settled = timeout.timeout
        timeout.observe(0.5)  # one outlier
        assert timeout.timeout > settled
        for _ in range(200):
            timeout.observe(0.02)
        assert timeout.timeout < 2 * settled

    def test_floor_and_ceiling_clamp(self):
        timeout = AdaptiveTimeout(floor=0.05, ceiling=0.2)
        for _ in range(100):
            timeout.observe(1e-6)
        assert timeout.timeout == 0.05
        for _ in range(100):
            timeout.observe(5.0)
        assert timeout.timeout == 0.2

    def test_negative_samples_ignored(self):
        timeout = AdaptiveTimeout()
        timeout.observe(-1.0)
        assert timeout.samples == 0

    def test_validates_bounds(self):
        with pytest.raises(SimulationError):
            AdaptiveTimeout(floor=0.5, ceiling=0.1)


class TestNodeHealthMonitor:
    def _warm(self, monitor, peer, start=0.0, interval=0.02, count=60):
        now = start
        for _ in range(count):
            monitor.observe(peer, now)
            now += interval
        return now

    def test_healthy_peer(self):
        monitor = NodeHealthMonitor()
        now = self._warm(monitor, "a")
        assert monitor.assess("a", now - 0.02 + 0.001) == HEALTHY

    def test_unknown_peer_is_healthy(self):
        monitor = NodeHealthMonitor()
        assert monitor.assess("ghost", 10.0) == HEALTHY

    def test_too_few_samples_suppresses_degraded_not_failed(self):
        monitor = NodeHealthMonitor(min_samples=8)
        monitor.observe("a", 0.0)
        monitor.observe("a", 0.02)
        # Shortly after the last heartbeat: not enough evidence to grade.
        assert monitor.assess("a", 0.03) == HEALTHY
        # Long silence is conclusive even with a thin sample window.
        assert monitor.assess("a", 50.0) == FAILED

    def test_silent_peer_fails(self):
        monitor = NodeHealthMonitor(phi_threshold=8.0)
        now = self._warm(monitor, "a")
        assert monitor.assess("a", now + 1.0) == FAILED

    def test_stretched_heartbeats_read_degraded(self):
        monitor = NodeHealthMonitor(slow_ratio=2.5)
        now = self._warm(monitor, "a")
        # 6x degradation: heartbeats keep coming, so φ never accrues far,
        # but the slowdown ratio flags it.
        for _ in range(40):
            monitor.observe("a", now)
            now += 0.12
        verdict = monitor.assess("a", now + 0.01)
        assert verdict == DEGRADED
        assert monitor.slowdown("a") > 2.5

    def test_forget(self):
        monitor = NodeHealthMonitor()
        now = self._warm(monitor, "a")
        monitor.forget("a")
        assert monitor.assess("a", now + 10.0) == HEALTHY

    def test_validates_thresholds(self):
        with pytest.raises(SimulationError):
            NodeHealthMonitor(phi_threshold=0.0)
        with pytest.raises(SimulationError):
            NodeHealthMonitor(slow_ratio=1.0)
