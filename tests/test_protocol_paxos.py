"""Integration tests for MultiPaxos and FPaxos."""

import pytest

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import Command
from repro.protocols.fpaxos import FPaxos
from repro.protocols.paxos import MultiPaxos

from tests.conftest import assert_correct, run_protocol


def test_basic_write_read(lan9):
    dep = Deployment(lan9).start(MultiPaxos)
    client = dep.new_client()
    seen = []
    dep.run_for(0.01)
    client.invoke(Command.put("x", 1), on_done=lambda r, l: seen.append(r.value))
    dep.run_for(0.05)
    client.invoke(Command.get("x"), on_done=lambda r, l: seen.append(r.value))
    dep.run_for(0.05)
    assert seen == [1, 1]


def test_all_replicas_converge(lan9):
    dep, _res = run_protocol(MultiPaxos, lan9, WorkloadSpec(keys=5))
    dep.run_for(0.2)  # let watermarks flush
    histories = {nid: r.store.history(0) for nid, r in dep.replicas.items() if r.store.history(0)}
    lengths = {len(h) for h in histories.values()}
    assert len(lengths) <= 2  # all equal or off-by-flush
    assert_correct(dep)


def test_linearizable_under_contention(lan9):
    dep, res = run_protocol(MultiPaxos, lan9, WorkloadSpec(keys=1), concurrency=8)
    assert res.completed > 100
    assert_correct(dep)


def test_forwarding_and_sticky_leader(lan9):
    dep = Deployment(lan9).start(MultiPaxos)
    dep.run_for(0.01)
    client = dep.new_client()
    # Force the first request to a follower; the reply's leader hint must
    # redirect subsequent traffic straight to the leader.
    follower = NodeID(3, 3)
    client.invoke(Command.put("k", 1), target=follower)
    dep.run_for(0.05)
    assert client._sticky == NodeID(1, 1)
    latencies = []
    client.invoke(Command.put("k", 2), on_done=lambda r, l: latencies.append(l))
    dep.run_for(0.05)
    assert latencies and latencies[0] < 0.0015  # no forwarding hop any more


def test_duplicate_request_returns_cached_value(lan9):
    dep = Deployment(lan9).start(MultiPaxos)
    dep.run_for(0.01)
    leader = dep.replicas[NodeID(1, 1)]
    from repro.paxi.message import ClientRequest, Command

    inbox = []
    dep.cluster.add_lightweight_endpoint("probe", "LAN", lambda s, m, b: inbox.append(m))
    request = ClientRequest(command=Command.put("k", "v"), client="probe", request_id=1)
    dep.cluster.network.transit("probe", leader.id, request, 100)
    dep.run_for(0.05)
    dep.cluster.network.transit("probe", leader.id, request, 100)  # retry
    dep.run_for(0.05)
    assert len(inbox) == 2
    assert inbox[0].value == "v" and inbox[1].value == "v"
    # The duplicate must not have executed twice.
    assert leader.store.version("k") == 1


def test_leader_crash_failover():
    cfg = Config.lan(3, 3, seed=2, election_timeout=0.05)
    dep = Deployment(cfg).start(MultiPaxos)
    bench = ClosedLoopBenchmark(dep, WorkloadSpec(keys=5), concurrency=4, retry_timeout=0.2)
    dep.crash(NodeID(1, 1), duration=1.0, at=0.3)
    result = bench.run(duration=2.0, warmup=0.0, settle=0.05)
    # Progress resumed after failover and the run stayed correct.
    late_ops = [op for op in dep.history.operations if op.returned_at > 1.0]
    assert len(late_ops) > 100
    new_leaders = {r.leader_hint for r in dep.replicas.values() if r.active}
    assert new_leaders and NodeID(1, 1) not in new_leaders
    assert result.failed == 0
    assert_correct(dep)


def test_follower_crash_harmless(lan9):
    dep = Deployment(lan9).start(MultiPaxos)
    bench = ClosedLoopBenchmark(dep, WorkloadSpec(keys=5), concurrency=4)
    dep.crash(NodeID(2, 2), duration=0.5, at=0.2)
    result = bench.run(duration=1.0, warmup=0.1, settle=0.05)
    assert result.throughput > 1000
    assert_correct(dep)


def test_message_drops_recovered_by_fill(lan9):
    dep = Deployment(lan9).start(MultiPaxos)
    # Drop everything from the leader to one follower for a while: the
    # follower misses slots and must gap-fill once the link heals.
    dep.drop(NodeID(1, 1), NodeID(3, 3), duration=0.2, at=0.1)
    bench = ClosedLoopBenchmark(dep, WorkloadSpec(keys=3, write_ratio=1.0), concurrency=2)
    bench.run(duration=0.6, warmup=0.05, settle=0.05)
    dep.run_for(0.5)  # heal + fill
    leader_history = dep.replicas[NodeID(1, 1)].store.history(0)
    lagger_history = dep.replicas[NodeID(3, 3)].store.history(0)
    assert len(lagger_history) > 0
    assert lagger_history == leader_history[: len(lagger_history)]
    assert_correct(dep)


def test_initial_leader_configurable():
    cfg = Config.lan(3, 3, seed=1, leader=NodeID(2, 1))
    dep = Deployment(cfg).start(MultiPaxos)
    dep.run_for(0.05)
    assert dep.replicas[NodeID(2, 1)].active
    assert not dep.replicas[NodeID(1, 1)].active


def test_thrifty_sends_fewer_messages(lan9):
    def messages_with(thrifty):
        cfg = Config.lan(3, 3, seed=5, thrifty=thrifty, heartbeat_interval=None)
        dep, _res = run_protocol(MultiPaxos, cfg, WorkloadSpec(keys=5), concurrency=2)
        return dep.cluster.network.stats.messages_sent

    assert messages_with(True) < 0.8 * messages_with(False)


def test_saturation_near_8k(lan9):
    """The paper's calibration: single-leader Paxos tops out ~8k ops/s."""
    _dep, res = run_protocol(MultiPaxos, lan9, concurrency=128, duration=0.3)
    assert 6500 < res.throughput < 9500


class TestFPaxos:
    def test_q2_quorums(self, lan9):
        cfg = Config.lan(3, 3, seed=1, q2_size=3)
        dep = Deployment(cfg).start(FPaxos)
        replica = dep.replicas[NodeID(1, 1)]
        assert replica.phase2_quorum().size == 3
        assert replica.phase1_quorum().size == 7

    def test_invalid_q2(self):
        from repro.errors import ConfigError

        cfg = Config.lan(3, 3, seed=1, q2_size=10)
        with pytest.raises(ConfigError):
            Deployment(cfg).start(FPaxos)

    def test_correct_under_load(self):
        cfg = Config.lan(3, 3, seed=3, q2_size=3)
        dep, res = run_protocol(FPaxos, cfg, WorkloadSpec(keys=10), concurrency=8)
        assert res.completed > 200
        assert_correct(dep)

    def test_small_q2_cuts_commit_latency_in_wan(self):
        """FPaxos phase-2 quorum of 2 commits with the nearest region."""
        regions = ("VA", "OH", "CA", "IR", "JP")
        base = Config.wan(regions, 1, seed=4)
        dep_paxos, res_paxos = run_protocol(
            MultiPaxos, base, concurrency=1, duration=0.5, settle=0.6, sites=["VA"]
        )
        cfg = Config.wan(regions, 1, seed=4, q2_size=2)
        dep_fp, res_fp = run_protocol(
            FPaxos, cfg, concurrency=1, duration=0.5, settle=0.6, sites=["VA"]
        )
        # Majority of 5 waits on CA (62 ms RTT from the VA leader); a q2 of
        # 2 commits with OH (11 ms).
        assert res_fp.latency.mean < res_paxos.latency.mean - 20
        assert_correct(dep_fp)
