"""Runtime batching: the Batcher, batched protocols, and the knee speedup.

Covers the batching tentpole end to end:

- :class:`~repro.paxi.node.Batcher` unit behavior (size flush, window
  flush, ordering, drain, validation);
- batched MultiPaxos / FPaxos / Raft stay linearizable and reach
  consensus, with real multi-command batches forming under load;
- targeted fault cases: the leader crashing with a batch pending, and the
  batched accept being dropped hard enough to break the quorum until the
  retransmit heals it;
- the acceptance criterion: with B = 16 the simulated MultiPaxos knee is
  at least 3x the unbatched knee, and matches the batched analytic model
  within the [0.8, 1.3] band of ``test_obs_latency_decomposition``.
"""

from __future__ import annotations

import pytest

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.sweep import closed_loop_sweep, max_throughput
from repro.bench.workload import WorkloadSpec
from repro.core.protocol_models import BatchedPaxosModel, PaxosModel
from repro.errors import ProtocolError
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import Command, ClientRequest
from repro.paxi.node import Batcher
from repro.protocols.fpaxos import FPaxos
from repro.protocols.paxos import MultiPaxos
from repro.protocols.raft import Raft

BATCHED = dict(batch_size=16, batch_window=0.001, pipeline_depth=8)


def _request(i: int) -> ClientRequest:
    return ClientRequest(command=Command.put(i, i), client=("client", 99), request_id=i)


def _host():
    deployment = Deployment(Config.lan(1, 1)).start(MultiPaxos)
    return deployment, deployment.replica(NodeID(1, 1))


# ---------------------------------------------------------------------------
# Batcher unit behavior
# ---------------------------------------------------------------------------


def test_batcher_flushes_at_max_size():
    deployment, host = _host()
    flushed: list[list[ClientRequest]] = []
    batcher = Batcher(host, flushed.append, window=10.0, max_size=3)
    for i in range(7):
        batcher.add(_request(i))
    assert [len(g) for g in flushed] == [3, 3]
    assert len(batcher) == 1  # seventh request still pending
    assert batcher.batches_flushed == 2
    assert batcher.commands_flushed == 6
    assert batcher.mean_batch_size == 3.0


def test_batcher_flushes_partial_batch_at_window():
    deployment, host = _host()
    flushed: list[list[ClientRequest]] = []
    batcher = Batcher(host, flushed.append, window=0.01, max_size=100)
    batcher.add(_request(1))
    batcher.add(_request(2))
    assert not flushed
    deployment.run_for(0.02)
    assert [len(g) for g in flushed] == [2]
    assert len(batcher) == 0
    # The window timer re-arms per batch, not per request.
    batcher.add(_request(3))
    deployment.run_for(0.02)
    assert [len(g) for g in flushed] == [2, 1]


def test_batcher_preserves_arrival_order():
    deployment, host = _host()
    flushed: list[list[ClientRequest]] = []
    batcher = Batcher(host, flushed.append, window=10.0, max_size=4)
    for i in range(8):
        batcher.add(_request(i))
    order = [r.request_id for group in flushed for r in group]
    assert order == list(range(8))


def test_batcher_drain_returns_pending_without_flushing():
    deployment, host = _host()
    flushed: list[list[ClientRequest]] = []
    batcher = Batcher(host, flushed.append, window=0.01, max_size=10)
    batcher.add(_request(1))
    drained = batcher.drain()
    assert [r.request_id for r in drained] == [1]
    assert not flushed and len(batcher) == 0
    deployment.run_for(0.05)  # the cancelled window timer must not fire
    assert not flushed
    assert batcher.mean_batch_size == 0.0


def test_batcher_rejects_bad_parameters():
    deployment, host = _host()
    with pytest.raises(ProtocolError):
        Batcher(host, lambda g: None, window=-0.1, max_size=4)
    with pytest.raises(ProtocolError):
        Batcher(host, lambda g: None, window=0.0, max_size=0)


def test_make_batcher_disabled_without_knobs():
    deployment, host = _host()
    assert host.make_batcher() is None  # batch_size=1, no window
    batched = Deployment(Config.lan(1, 1, **BATCHED)).start(MultiPaxos)
    replica = batched.replica(NodeID(1, 1))
    assert replica.batcher is not None
    assert replica.batcher.max_size == 16


# ---------------------------------------------------------------------------
# Batched protocols stay correct and actually batch
# ---------------------------------------------------------------------------


def _batching_leader(deployment):
    """The replica whose batcher flushed the most batches."""
    candidates = [
        r for r in deployment.replicas.values()
        if getattr(r, "batcher", None) is not None and r.batcher.batches_flushed
    ]
    assert candidates, "no replica flushed a batch"
    return max(candidates, key=lambda r: r.batcher.batches_flushed)


@pytest.mark.parametrize("factory", [MultiPaxos, FPaxos, Raft])
def test_batched_protocol_linearizable_under_load(factory):
    deployment = Deployment(Config.lan(3, 3, seed=13, **BATCHED)).start(factory)
    bench = ClosedLoopBenchmark(deployment, WorkloadSpec(keys=40, write_ratio=0.5), 32)
    result = bench.run(duration=0.3, warmup=0.05, settle=0.05)
    assert result.completed > 500
    linearizable, consensus = deployment.verify()
    assert linearizable and consensus
    leader = _batching_leader(deployment)
    # Under 32 closed-loop clients real multi-command batches must form.
    assert leader.batcher.mean_batch_size > 2.0


def test_batched_paxos_tracing_composes():
    """Per-command spans survive batching: every completed request has a
    complete span whose commit mark landed between submit and reply."""
    deployment = Deployment(Config.lan(3, 3, seed=5, **BATCHED)).start(MultiPaxos)
    deployment.cluster.obs.tracer.enabled = True
    bench = ClosedLoopBenchmark(deployment, WorkloadSpec(keys=20), 24)
    bench.run(duration=0.25, warmup=0.05, settle=0.05)
    tracer = deployment.cluster.obs.tracer
    completed = sum(client.completed for client in deployment.clients)
    finished_ok = sum(1 for span in tracer.finished if not span.failed)
    assert finished_ok == completed > 0
    for span in tracer.finished:
        assert span.monotone()
        names = [event.name for event in span.events]
        assert names[0] == "submit" and names[-1] == "reply_recv"
        assert "quorum" in names  # the batched commit fans trace marks out


# ---------------------------------------------------------------------------
# Targeted fault cases
# ---------------------------------------------------------------------------


def test_leader_crash_with_batch_pending_stays_safe():
    """Crash the Paxos leader while batches are in flight/pending: clients
    retry, a new leader takes over, and the history stays linearizable."""
    config = Config.lan(3, 3, seed=23, batch_size=16, batch_window=0.005, pipeline_depth=8)
    deployment = Deployment(config).start(MultiPaxos)
    deployment.crash(NodeID(1, 1), 0.5, at=0.1)
    bench = ClosedLoopBenchmark(
        deployment, WorkloadSpec(keys=10, write_ratio=0.5), 8, retry_timeout=0.25
    )
    result = bench.run(duration=1.2, warmup=0.0, settle=0.05)
    deployment.run_for(1.0)  # drain retries
    assert result.completed > 100
    linearizable, consensus = deployment.verify()
    assert linearizable and consensus


def test_dropped_batch_accept_heals_via_retransmit():
    """Drop the leader's links to five followers (quorum unreachable) for a
    spell: committed batches stall, the heartbeat retransmit re-sends the
    uncommitted accepts once the links heal, and nothing is lost."""
    config = Config.lan(3, 3, seed=31, **BATCHED)
    deployment = Deployment(config).start(MultiPaxos)
    leader = NodeID(1, 1)
    victims = [NodeID(2, 1), NodeID(2, 2), NodeID(2, 3), NodeID(3, 1), NodeID(3, 2)]
    for victim in victims:
        deployment.drop(leader, victim, 0.25, at=0.08)
    bench = ClosedLoopBenchmark(
        deployment, WorkloadSpec(keys=10, write_ratio=0.5), 8, retry_timeout=0.4
    )
    result = bench.run(duration=1.0, warmup=0.0, settle=0.05)
    deployment.run_for(1.0)
    assert result.completed > 100
    linearizable, consensus = deployment.verify()
    assert linearizable and consensus


# ---------------------------------------------------------------------------
# The acceptance criterion: knee speedup and model conformance
# ---------------------------------------------------------------------------


def test_batched_knee_speedup_and_model_band():
    spec = WorkloadSpec(keys=1000, write_ratio=0.5)
    concurrencies = (32, 96)

    def sweep(config):
        def make():
            return Deployment(config).start(MultiPaxos)

        points = closed_loop_sweep(
            make, spec, concurrencies, duration=0.35, warmup=0.07, settle=0.05
        )
        return max_throughput(points)

    unbatched_knee = sweep(Config.lan(3, 3, seed=55))
    batched_knee = sweep(Config.lan(3, 3, seed=55, **BATCHED))
    assert batched_knee >= 3.0 * unbatched_knee, (
        f"batched knee {batched_knee:.0f} < 3x unbatched {unbatched_knee:.0f}"
    )
    # Batched Formula 2 capacity vs the simulator, same tolerance band as
    # the latency-decomposition conformance tests.
    model = BatchedPaxosModel(
        Config.lan(3, 3).topology, batch_size=16, batch_window=0.001
    ).max_throughput()
    assert model * 0.8 <= batched_knee <= model * 1.3, (
        f"simulated batched knee {batched_knee:.0f} vs model {model:.0f}"
    )
    unbatched_model = PaxosModel(Config.lan(3, 3).topology).max_throughput()
    assert unbatched_model * 0.8 <= unbatched_knee <= unbatched_model * 1.3
