"""Unit tests for deployment topologies."""

import pytest

from repro.core.topology import (
    AWS_REGIONS,
    LOCAL_RTT_MEAN_MS,
    LOCAL_RTT_SIGMA_MS,
    RttDistribution,
    Topology,
    aws_wan,
    lan,
)
from repro.errors import ConfigError


class TestLan:
    def test_single_site(self):
        topo = lan(9)
        assert topo.sites == ("LAN",)
        assert topo.n_nodes == 9
        assert all(site == "LAN" for site in topo.node_sites)

    def test_local_rtt_matches_paper_figure3(self):
        topo = lan(3)
        dist = topo.site_rtt("LAN", "LAN")
        assert dist.mean_ms == pytest.approx(LOCAL_RTT_MEAN_MS)
        assert dist.sigma_ms == pytest.approx(LOCAL_RTT_SIGMA_MS)

    def test_needs_at_least_one_node(self):
        with pytest.raises(ConfigError):
            lan(0)


class TestAwsWan:
    def test_default_five_regions(self):
        topo = aws_wan()
        assert topo.sites == AWS_REGIONS
        assert topo.n_nodes == 5

    def test_nodes_per_region(self):
        topo = aws_wan(("VA", "OH", "CA"), 3)
        assert topo.n_nodes == 9
        assert topo.nodes_in_site("OH") == [3, 4, 5]

    def test_rtt_symmetry(self):
        topo = aws_wan()
        assert topo.site_rtt_mean_ms("VA", "JP") == topo.site_rtt_mean_ms("JP", "VA")

    def test_intra_region_is_local(self):
        topo = aws_wan(("VA", "OH"), 2)
        assert topo.site_rtt("VA", "VA").mean_ms == pytest.approx(LOCAL_RTT_MEAN_MS)

    def test_asymmetric_distances(self):
        """The paper stresses that WAN distances are non-uniform: VA-OH is
        far closer than IR-JP."""
        topo = aws_wan()
        assert topo.site_rtt_mean_ms("VA", "OH") < 20
        assert topo.site_rtt_mean_ms("IR", "JP") > 150

    def test_unknown_region_rejected(self):
        with pytest.raises(ConfigError):
            aws_wan(("VA", "Narnia"))

    def test_zero_nodes_per_region_rejected(self):
        with pytest.raises(ConfigError):
            aws_wan(("VA",), 0)


class TestTopologyQueries:
    def test_node_rtt_uses_sites(self):
        topo = aws_wan(("VA", "JP"), 1)
        assert topo.node_rtt(0, 1).mean_ms == pytest.approx(162.0)

    def test_rtts_from_excludes_self(self):
        topo = aws_wan(("VA", "OH", "CA"), 1)
        rtts = topo.rtts_from(0)
        assert len(rtts) == 2
        assert sorted(rtts) == [11.0, 62.0]

    def test_with_nodes_replaces_placement(self):
        topo = aws_wan(("VA", "OH"), 1).with_nodes(["OH", "OH", "VA"])
        assert topo.n_nodes == 3
        assert topo.node_site(0) == "OH"

    def test_missing_rtt_raises(self):
        topo = Topology(sites=("A", "B"), rtt_ms={}, node_sites=("A", "B"))
        with pytest.raises(ConfigError):
            topo.site_rtt("A", "B")

    def test_duplicate_sites_rejected(self):
        with pytest.raises(ConfigError):
            Topology(sites=("A", "A"), rtt_ms={})

    def test_unknown_node_site_rejected(self):
        with pytest.raises(ConfigError):
            Topology(sites=("A",), rtt_ms={}, node_sites=("B",))


def test_one_way_halves_rtt():
    dist = RttDistribution(100.0, 10.0)
    one_way = dist.one_way()
    assert one_way.mean_ms == 50.0
    assert one_way.sigma_ms == 5.0
