"""Tests for the client library: retries, failover, stickiness, faults."""

import pytest

from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import ClientReply, ClientRequest, Command
from repro.paxi.node import Replica


class Echo(Replica):
    def __init__(self, deployment, node_id):
        super().__init__(deployment, node_id)
        self.served = 0
        self.register(ClientRequest, self.on_request)

    def on_request(self, src, m):
        self.served += 1
        value = self.store.execute(m.command)
        self.send(
            m.client,
            ClientReply(request_id=m.request_id, ok=True, value=value, replied_by=self.id),
        )


class Mute(Replica):
    """Never replies — forces client timeouts."""

    def __init__(self, deployment, node_id):
        super().__init__(deployment, node_id)
        self.register(ClientRequest, lambda src, m: None)


def test_retry_rotates_to_next_replica():
    dep = Deployment(Config.lan(1, 3, seed=1)).start(Echo)
    client = dep.new_client()
    client.retry_timeout = 0.05
    first = client._preferred[0]
    dep.drop(client.address, first, duration=0.2, at=0.0)
    done = []
    client.invoke(Command.put("k", 1), on_done=lambda r, l: done.append(r.replied_by))
    dep.run_for(0.3)
    assert done and done[0] != first  # failed over to another node
    assert client.completed == 1
    assert client.failed == 0


def test_gives_up_after_max_retries():
    dep = Deployment(Config.lan(1, 2, seed=2)).start(Mute)
    client = dep.new_client()
    client.retry_timeout = 0.02
    client.max_retries = 3
    client.invoke(Command.put("k", 1))
    dep.run_for(1.0)
    assert client.failed == 1
    assert client.outstanding == 0
    # The abandoned write stays in the history as possibly-effective.
    assert dep.history.in_flight == 1


def test_stale_reply_after_retry_is_ignored():
    dep = Deployment(Config.lan(1, 3, seed=3)).start(Echo)
    client = dep.new_client()
    client.retry_timeout = 0.0005  # shorter than one network delay
    done = []
    client.invoke(Command.put("k", 1), on_done=lambda r, l: done.append(r.replied_by))
    dep.run_for(0.5)
    # Both the original and the retry may execute, but exactly one
    # completion is reported.
    assert len(done) == 1
    assert client.completed == 1


def test_sticky_hint_cleared_on_timeout():
    dep = Deployment(Config.lan(1, 3, seed=4)).start(Echo)
    client = dep.new_client()
    client.retry_timeout = 0.05
    client._sticky = NodeID(1, 2)
    dep.drop(client.address, NodeID(1, 2), duration=0.2, at=0.0)
    client.invoke(Command.put("k", 1))
    dep.run_for(0.3)
    assert client._sticky is None or client._sticky != NodeID(1, 2) or client.completed == 1


def test_no_retry_by_default():
    dep = Deployment(Config.lan(1, 2, seed=5)).start(Mute)
    client = dep.new_client()
    client.invoke(Command.put("k", 1))
    dep.run_for(0.5)
    assert client.outstanding == 1  # waits forever, never fails
    assert client.failed == 0


def test_client_fault_commands_delegate():
    dep = Deployment(Config.lan(1, 3, seed=6)).start(Echo)
    client = dep.new_client()
    client.crash(NodeID(1, 2), duration=0.5)
    client.drop(NodeID(1, 1), NodeID(1, 2), duration=0.5)
    client.slow(NodeID(1, 2), NodeID(1, 3), duration=0.5)
    client.flaky(NodeID(1, 3), NodeID(1, 1), duration=0.5, probability=0.3)
    # Crash registered as a server freeze; the drop rule is active.
    assert dep.cluster.server(NodeID(1, 2)) is not None
    dep.run_for(0.01)
    assert dep.cluster.server(NodeID(1, 2)).frozen
    rules = dep.cluster.faults.active_rules(0.1, NodeID(1, 1), NodeID(1, 2))
    assert any(rule.kind == "drop" for rule in rules)


def test_explicit_target_overrides_preference():
    dep = Deployment(Config.lan(1, 3, seed=7)).start(Echo)
    client = dep.new_client()
    target = NodeID(1, 3)
    client.invoke(Command.put("k", 1), target=target)
    dep.run_for(0.05)
    assert dep.replicas[target].served == 1


def test_request_ids_monotone():
    dep = Deployment(Config.lan(1, 1, seed=8)).start(Echo)
    client = dep.new_client()
    ids = [client.invoke(Command.put("k", i)) for i in range(5)]
    assert ids == sorted(ids) and len(set(ids)) == 5


class TestRetryCapSemantics:
    def test_effective_cap_is_max_of_cap_and_base_timeout(self):
        dep = Deployment(Config.lan(1, 2, seed=6)).start(Echo)
        client = dep.new_client()
        client.retry_timeout = 0.05
        client.retry_cap = 1.0
        assert client.effective_retry_cap == 1.0
        # A cap below the base timeout is clamped up: retry k must never
        # wait less than the first transmission did.
        client.retry_cap = 0.01
        assert client.effective_retry_cap == 0.05
        client.retry_timeout = 2.0
        client.retry_cap = 1.0
        assert client.effective_retry_cap == 2.0

    def test_backoff_delays_respect_effective_cap(self):
        dep = Deployment(Config.lan(1, 2, seed=6)).start(Echo)
        client = dep.new_client()
        client.retry_timeout = 0.1
        client.retry_backoff = 4.0
        client.retry_cap = 0.2
        assert client._retry_delay(0) == 0.1  # first transmission: exact
        for k in range(1, 6):
            delay = client._retry_delay(k)
            # <= cap stretched by at most 25% jitter, >= base timeout.
            assert delay <= client.effective_retry_cap * 1.25 + 1e-12
            assert delay >= client.retry_timeout


class TestMaxAttempts:
    def test_max_attempts_caps_transmissions(self):
        dep = Deployment(Config.lan(1, 2, seed=7)).start(Mute)
        client = dep.new_client()
        client.retry_timeout = 0.02
        client.max_retries = 50
        client.max_attempts = 3
        request_id = client.invoke(Command.put("k", 1))
        dep.run_for(2.0)
        assert client.failed == 1
        assert client.failure_reason(request_id) == "retries_exhausted"
        assert client.attempts(request_id) == 3

    def test_unset_max_attempts_keeps_historical_behavior(self):
        dep = Deployment(Config.lan(1, 2, seed=7)).start(Mute)
        client = dep.new_client()
        client.retry_timeout = 0.02
        client.max_retries = 5
        request_id = client.invoke(Command.put("k", 1))
        dep.run_for(2.0)
        assert client.attempts(request_id) == 6  # 1 original + max_retries


class TestRetryBudget:
    def test_exhausted_budget_fails_typed_overloaded(self):
        dep = Deployment(Config.lan(1, 2, seed=8)).start(Mute)
        client = dep.new_client()
        client.retry_timeout = 0.02
        client.max_retries = 50
        client.retry_budget = 2.0
        client.retry_refill_rate = 0.0
        ids = [client.invoke(Command.put("k", i)) for i in range(2)]
        dep.run_for(2.0)
        assert client.overloaded == 2
        for request_id in ids:
            assert client.failure_reason(request_id) == "overloaded"
        # Two tokens were spent across the pair before the bucket dried up.
        total = sum(client.attempts(i) - 1 for i in ids)
        assert total == 2

    def test_budget_refills_over_time(self):
        dep = Deployment(Config.lan(1, 2, seed=8)).start(Mute)
        client = dep.new_client()
        client.retry_timeout = 0.05
        client.max_retries = 2
        client.retry_budget = 1.0
        client.retry_refill_rate = 100.0  # refills far faster than retries
        request_id = client.invoke(Command.put("k", 1))
        dep.run_for(2.0)
        # Never starved: the request used its full retry allowance.
        assert client.failure_reason(request_id) == "retries_exhausted"
        assert client.attempts(request_id) == 3


class TestCircuitBreaker:
    def _muted_client(self, threshold=2, cooldown=0.5):
        dep = Deployment(Config.lan(1, 2, seed=9)).start(Mute)
        client = dep.new_client()
        client.retry_timeout = 0.02
        client.max_retries = 0  # each invoke = one transmission, one failure
        client.breaker_threshold = threshold
        client.breaker_cooldown = cooldown
        return dep, client

    def test_breaker_opens_after_consecutive_failures(self):
        dep, client = self._muted_client()
        for i in range(2):
            client.invoke(Command.put("k", i))
            dep.run_for(0.1)
        assert client._breaker_failures == 2
        # Open circuit: new invokes fail fast without touching the wire.
        request_id = client.invoke(Command.put("k", 99))
        assert client.failure_reason(request_id) == "overloaded"
        assert client.outstanding == 0

    def test_half_open_probe_after_cooldown(self):
        dep, client = self._muted_client(cooldown=0.2)
        for i in range(2):
            client.invoke(Command.put("k", i))
            dep.run_for(0.1)
        dep.run_for(0.3)  # cooldown elapses: half-open
        probe = client.invoke(Command.put("k", 100))
        assert client.failure_reason(probe) is None  # the probe flies
        # While the probe is outstanding, everyone else still fails fast.
        blocked = client.invoke(Command.put("k", 101))
        assert client.failure_reason(blocked) == "overloaded"

    def test_success_closes_breaker(self):
        dep = Deployment(Config.lan(1, 2, seed=10)).start(Echo)
        client = dep.new_client()
        client.breaker_threshold = 2
        client._breaker_failures = 2  # pretend the circuit just tripped
        client._breaker_open_until = 0.0  # cooldown already over
        probe = client.invoke(Command.put("k", 1))
        dep.run_for(0.2)
        assert client.failure_reason(probe) is None
        assert client.completed == 1
        assert client._breaker_failures == 0  # success closed the circuit
        follow_up = client.invoke(Command.put("k", 2))
        dep.run_for(0.2)
        assert client.failure_reason(follow_up) is None
        assert client.completed == 2
