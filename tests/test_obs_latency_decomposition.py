"""Traced latency decomposition vs. the M/D/1 queueing prediction.

Open-loop (Poisson) MultiPaxos runs at ~20% and ~60% of modeled capacity:
the traced queue-wait mean must track the M/D/1 ``wQ`` prediction, the
span decomposition must add up, and every span must be monotone and
complete (each submit matched by a reply or an explicit failure).
"""

from __future__ import annotations

import pytest

from repro.bench.benchmarker import OpenLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.core.protocol_models import PaxosModel
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.protocols.paxos import MultiPaxos

N = 5


def _traced_run(load_fraction: float, seed: int = 29, duration: float = 0.4):
    cfg = Config.lan(1, N, seed=seed, heartbeat_interval=None)
    deployment = Deployment(cfg).start(MultiPaxos)
    deployment.cluster.obs.tracer.enabled = True
    model = PaxosModel(cfg.topology)
    rate = load_fraction * model.max_throughput()
    bench = OpenLoopBenchmark(deployment, WorkloadSpec(keys=50), rate=rate)
    result = bench.run(duration=duration, warmup=0.3, settle=0.3)
    warmup_end = deployment.now - duration
    return deployment, model, rate, result, warmup_end


@pytest.mark.parametrize("load_fraction", [0.2, 0.6])
def test_traced_wq_tracks_md1(load_fraction):
    deployment, model, rate, result, warmup_end = _traced_run(load_fraction)
    breakdowns = deployment.cluster.obs.tracer.breakdowns(since=warmup_end)
    assert len(breakdowns) > 50

    measured_wq = sum(d["wq"] for d in breakdowns) / len(breakdowns)
    predicted_wq = model.busy_node().wait_time(rate)
    # The model queues the *whole round* as one M/D/1 job; the simulator
    # fragments it into ~2n per-message jobs, so the request message's
    # measured wait sits a stable structural factor (~1/3, empirically
    # 0.27-0.41 across loads and seeds) below the prediction.  Tracking
    # means staying inside that band — drifting out of it would mean the
    # simulator and the model no longer describe the same queue.
    assert predicted_wq * 0.15 <= measured_wq <= predicted_wq * 0.8, (
        f"measured wQ {measured_wq * 1e6:.1f}us vs M/D/1 {predicted_wq * 1e6:.1f}us "
        f"at {load_fraction:.0%} load"
    )
    # Network delay is (nearly) load-independent; it must match the model.
    measured_net = sum(d["dl"] + d["dq"] for d in breakdowns) / len(breakdowns)
    predicted_net = model.network_delay_ms() / 1e3
    assert predicted_net * 0.8 <= measured_net <= predicted_net * 1.3


def test_wq_growth_follows_md1_shape():
    """The sharper M/D/1 check: the measured queue wait must *grow* with
    load like rho / (1 - rho) does — the structural fragmentation factor
    cancels out in the ratio between two load points."""
    low = _traced_run(0.2)
    high = _traced_run(0.6)
    wq_low = _mean_component(low, "wq")
    wq_high = _mean_component(high, "wq")
    predicted_growth = low[1].busy_node().wait_time(high[2]) / low[1].busy_node().wait_time(
        low[2]
    )  # = (0.6/0.4) / (0.2/0.8) = 6.0
    measured_growth = wq_high / wq_low
    assert predicted_growth * 0.6 <= measured_growth <= predicted_growth * 1.5
    # ...while the network component stays put.
    net_low = _mean_component(low, "dl") + _mean_component(low, "dq")
    net_high = _mean_component(high, "dl") + _mean_component(high, "dq")
    assert abs(net_high - net_low) < 0.3 * net_low


def _mean_component(run, component):
    deployment, _model, _rate, _result, warmup_end = run
    breakdowns = deployment.cluster.obs.tracer.breakdowns(since=warmup_end)
    return sum(d[component] for d in breakdowns) / len(breakdowns)


@pytest.mark.parametrize("load_fraction", [0.2, 0.6])
def test_spans_monotone_and_complete(load_fraction):
    deployment, _model, _rate, result, _warmup_end = _traced_run(load_fraction)
    tracer = deployment.cluster.obs.tracer
    # Completeness: every span that ended did so exactly once, spans still
    # open equal the requests still in flight at the end of the run.
    assert len(tracer.finished) > 100
    assert all(span.done for span in tracer.finished)
    assert not any(span.failed for span in tracer.finished)
    in_flight = sum(client.outstanding for client in deployment.clients)
    assert tracer.open_count == in_flight
    assert tracer.unmatched_events == 0
    for span in tracer.finished:
        assert span.monotone(), f"non-monotone span {span.span_key}: {span.events}"
        names = [event.name for event in span.events]
        assert names[0] == "submit"
        assert names[-1] == "reply_recv"
        assert "server_enqueue" in names and "handler" in names and "quorum" in names


def test_decomposition_sums_to_total():
    deployment, _model, _rate, _result, warmup_end = _traced_run(0.4)
    breakdowns = deployment.cluster.obs.tracer.breakdowns(since=warmup_end)
    assert breakdowns
    for d in breakdowns:
        assert d["wq"] >= 0 and d["ts"] > 0 and d["dl"] > 0 and d["dq"] > 0
        assert d["wq"] + d["ts"] + d["dl"] + d["dq"] == pytest.approx(d["total"], rel=1e-9)


def test_benchmark_result_carries_window_metrics():
    deployment, model, rate, result, _warmup_end = _traced_run(0.6)
    assert result.metrics is not None
    leader = result.metrics["1.1"]
    # Window utilization must match the model's rho at this arrival rate.
    rho = rate / model.max_throughput()
    assert leader["utilization"] == pytest.approx(rho, rel=0.15)
    # Little's law: mean queue depth ~ lambda_jobs * mean time in system.
    assert leader["mean_queue_depth"] > 0
    assert leader["queue_samples"], "tracing-enabled runs sample queue depth"
    follower = result.metrics["1.2"]
    assert follower["utilization"] < leader["utilization"]
