"""Larger-grid deployments: the quorum math beyond the paper's 3x3."""

import pytest

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID, grid_ids
from repro.paxi.message import Command
from repro.paxi.quorum import GridQuorum
from repro.protocols.epaxos import CommitMsg, EPaxos
from repro.protocols.wpaxos import WPaxos

from tests.conftest import assert_correct

pytestmark = pytest.mark.slow


def test_wpaxos_5x5_grid_f2():
    """A 5x5 grid with f=2, fz=1: phase-2 needs 3 acks in 2 zones."""
    cfg = Config.lan(5, 5, seed=71, f=2, fz=1)
    dep = Deployment(cfg).start(WPaxos)
    bench = ClosedLoopBenchmark(dep, WorkloadSpec(keys=100), concurrency=16)
    result = bench.run(duration=0.3, warmup=0.05, settle=0.05)
    assert result.completed > 300
    dep.run_for(0.3)
    assert_correct(dep)


def test_wpaxos_grid_quorum_sizes_5x5():
    ids = grid_ids(5, 5)
    q1 = GridQuorum(ids, phase=1, f=2, fz=1)
    q2 = GridQuorum(ids, phase=2, f=2, fz=1)
    assert q1.zones_needed == 4 and q1.per_zone_needed == 3
    assert q2.zones_needed == 2 and q2.per_zone_needed == 3


def test_wpaxos_wide_flat_grid():
    """9 zones x 1 node (one replica per region), f=0 fz=0: every object
    commits at its owner alone, like a sharded store."""
    cfg = Config.lan(9, 1, seed=72, f=0, fz=0, steal_threshold=1)
    dep = Deployment(cfg).start(WPaxos)
    bench = ClosedLoopBenchmark(dep, WorkloadSpec(keys=200), concurrency=16)
    result = bench.run(duration=0.3, warmup=0.05, settle=0.05)
    assert result.completed > 500
    dep.run_for(0.3)
    assert_correct(dep)


def test_epaxos_executes_mutual_dependency_cycle():
    """Two concurrently-committed instances that depend on each other form
    an SCC; every replica must execute them in the same (seq, id) order."""
    dep = Deployment(Config.lan(1, 3, seed=73)).start(EPaxos)
    a_id = (NodeID(1, 1), 1)
    b_id = (NodeID(1, 2), 1)
    observer = dep.replicas[NodeID(1, 3)]
    # Deliver commits with mutual deps in an arbitrary order.
    observer.on_commit(
        NodeID(1, 1),
        CommitMsg(instance=a_id, command=Command.put("k", "A"), deps=frozenset({b_id}), seq=2),
    )
    observer.on_commit(
        NodeID(1, 2),
        CommitMsg(instance=b_id, command=Command.put("k", "B"), deps=frozenset({a_id}), seq=1),
    )
    # SCC executed by ascending seq: B (seq 1) before A (seq 2).
    assert observer.store.history("k") == ["B", "A"]

    # A second replica receiving the same commits in the opposite order
    # must produce the identical history.
    other = dep.replicas[NodeID(1, 1)]
    other.on_commit(
        NodeID(1, 2),
        CommitMsg(instance=b_id, command=Command.put("k", "B"), deps=frozenset({a_id}), seq=1),
    )
    other.on_commit(
        NodeID(1, 1),
        CommitMsg(instance=a_id, command=Command.put("k", "A"), deps=frozenset({b_id}), seq=2),
    )
    assert other.store.history("k") == ["B", "A"]


def test_epaxos_larger_cluster():
    cfg = Config.lan(5, 3, seed=74)  # N = 15, fast quorum = 12
    dep = Deployment(cfg).start(EPaxos)
    assert dep.replicas[NodeID(1, 1)].fast_quorum_size == 12
    bench = ClosedLoopBenchmark(dep, WorkloadSpec(keys=50), concurrency=8)
    result = bench.run(duration=0.3, warmup=0.05, settle=0.05)
    assert result.completed > 200
    assert_correct(dep)
