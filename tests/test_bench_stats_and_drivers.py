"""Tests for latency statistics and benchmark drivers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.bench.benchmarker import ClosedLoopBenchmark, OpenLoopBenchmark
from repro.bench.stats import LatencySummary, cdf, histogram, mean, percentile, stddev
from repro.bench.sweep import SweepPoint, closed_loop_sweep, format_curve, max_throughput
from repro.bench.workload import WorkloadSpec
from repro.errors import WorkloadError
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.protocols.paxos import MultiPaxos


class TestStats:
    def test_summary_of_empty(self):
        s = LatencySummary.of([])
        assert s.count == 0
        assert math.isnan(s.mean)

    def test_summary_basic(self):
        s = LatencySummary.of([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.p50 == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0

    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 0.5) == pytest.approx(5.0)
        assert percentile([1.0, 2.0, 3.0], 1.0) == 3.0
        assert percentile([1.0, 2.0, 3.0], 0.0) == 1.0

    def test_percentile_domain(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_cdf_monotone_and_complete(self):
        curve = cdf(list(range(100)), points=10)
        values = [v for v, _p in curve]
        probs = [p for _v, p in curve]
        assert values == sorted(values)
        assert probs == sorted(probs)
        assert probs[-1] == 1.0

    def test_histogram_counts_everything(self):
        bins = histogram([1.0, 2.0, 3.0, 4.0, 5.0], bins=2)
        assert sum(count for _lo, _hi, count in bins) == 5

    def test_histogram_degenerate(self):
        assert histogram([2.0, 2.0]) == [(2.0, 2.0, 2)]

    def test_mean_stddev(self):
        assert mean([1.0, 3.0]) == 2.0
        assert stddev([1.0, 3.0]) == pytest.approx(math.sqrt(2))
        assert stddev([1.0]) == 0.0

    @given(st.lists(st.floats(min_value=0, max_value=1e3, allow_nan=False), min_size=1, max_size=50))
    def test_percentiles_bounded_by_extremes(self, samples):
        ordered = sorted(samples)
        for q in (0.1, 0.5, 0.9, 0.99):
            p = percentile(ordered, q)
            assert ordered[0] - 1e-9 <= p <= ordered[-1] + 1e-9


def make_paxos():
    return Deployment(Config.lan(1, 3, seed=8)).start(MultiPaxos)


class TestClosedLoop:
    def test_concurrency_validated(self):
        with pytest.raises(WorkloadError):
            ClosedLoopBenchmark(make_paxos(), WorkloadSpec(), concurrency=0)

    def test_collects_throughput_and_latency(self):
        bench = ClosedLoopBenchmark(make_paxos(), WorkloadSpec(keys=10), concurrency=2)
        result = bench.run(duration=0.2, warmup=0.05, settle=0.02)
        assert result.completed > 50
        assert result.throughput == pytest.approx(result.completed / result.window)
        assert 0.5 < result.latency.mean < 5.0  # milliseconds

    def test_higher_concurrency_more_throughput_below_saturation(self):
        r1 = ClosedLoopBenchmark(make_paxos(), WorkloadSpec(keys=10), 1).run(0.2, 0.05, 0.02)
        r4 = ClosedLoopBenchmark(make_paxos(), WorkloadSpec(keys=10), 4).run(0.2, 0.05, 0.02)
        assert r4.throughput > 2 * r1.throughput

    def test_per_site_breakdown(self):
        dep = Deployment(Config.wan(("VA", "OH"), 1, seed=8)).start(MultiPaxos)
        bench = ClosedLoopBenchmark(dep, WorkloadSpec(keys=10), concurrency=4)
        result = bench.run(duration=0.4, warmup=0.1, settle=0.3)
        assert set(result.per_site) == {"VA", "OH"}

    def test_spec_per_site_mapping_required(self):
        dep = Deployment(Config.wan(("VA", "OH"), 1, seed=8)).start(MultiPaxos)
        with pytest.raises(WorkloadError):
            ClosedLoopBenchmark(dep, {"VA": WorkloadSpec()}, concurrency=2)


class TestOpenLoop:
    def test_rate_validated(self):
        with pytest.raises(WorkloadError):
            OpenLoopBenchmark(make_paxos(), WorkloadSpec(), rate=0.0)

    def test_achieves_offered_rate_below_saturation(self):
        bench = OpenLoopBenchmark(make_paxos(), WorkloadSpec(keys=10), rate=2000.0)
        result = bench.run(duration=0.5, warmup=0.1, settle=0.02)
        assert result.throughput == pytest.approx(2000.0, rel=0.15)

    def test_latency_grows_near_saturation(self):
        # A 9-node cluster saturates near 8k ops/s (the paper's calibration);
        # offering ~95% of that must inflate queueing delay visibly.
        def make9():
            return Deployment(Config.lan(3, 3, seed=8)).start(MultiPaxos)

        lo = OpenLoopBenchmark(make9(), WorkloadSpec(keys=10), rate=2000.0).run(0.4, 0.1, 0.02)
        hi = OpenLoopBenchmark(make9(), WorkloadSpec(keys=10), rate=7600.0).run(0.4, 0.1, 0.02)
        assert hi.latency.mean > 1.5 * lo.latency.mean


class TestSweep:
    def test_sweep_shapes(self):
        points = closed_loop_sweep(
            make_paxos, WorkloadSpec(keys=10), concurrencies=(1, 8), duration=0.15, warmup=0.03, settle=0.02
        )
        assert [p.concurrency for p in points] == [1, 8]
        assert points[1].throughput > points[0].throughput
        assert max_throughput(points) == points[1].throughput

    def test_format_curve(self):
        text = format_curve([SweepPoint(1, 1000.0, 1.0, 1.0, 2.0, 100)], label="x")
        assert "x" in text and "1000" in text

    def test_max_throughput_empty(self):
        assert max_throughput([]) == 0.0
