"""Integration tests for WPaxos."""

import pytest

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import Command
from repro.protocols.wpaxos import WPaxos

from tests.conftest import assert_correct, run_protocol


def test_first_access_steals_unowned_object(lan9):
    dep = Deployment(lan9).start(WPaxos)
    client = dep.new_client()
    seen = []
    client.invoke(Command.put("obj", 1), target=NodeID(2, 1), on_done=lambda r, l: seen.append(r.value))
    dep.run_for(0.05)
    assert seen == [1]
    assert dep.replicas[NodeID(2, 1)].objects["obj"].active


def test_non_leader_forwards_to_zone_leader(lan9):
    dep = Deployment(lan9).start(WPaxos)
    client = dep.new_client()
    seen = []
    client.invoke(Command.put("obj", 1), target=NodeID(2, 3), on_done=lambda r, l: seen.append(r.value))
    dep.run_for(0.05)
    assert seen == [1]
    assert dep.replicas[NodeID(2, 1)].objects["obj"].active  # zone leader owns


def test_remote_requests_forward_until_steal_threshold(lan9):
    dep = Deployment(lan9).start(WPaxos)
    owner_client = dep.new_client()
    owner_client.invoke(Command.put("obj", 0), target=NodeID(1, 1))
    dep.run_for(0.05)
    remote = dep.new_client()
    # Two remote accesses: still forwarded (threshold is 3).
    remote.invoke(Command.put("obj", 1), target=NodeID(2, 1))
    dep.run_for(0.05)
    remote.invoke(Command.put("obj", 2), target=NodeID(2, 1))
    dep.run_for(0.05)
    assert dep.replicas[NodeID(1, 1)].objects["obj"].active
    assert not dep.replicas[NodeID(2, 1)].objects["obj"].active
    # Third consecutive access triggers the steal.
    remote.invoke(Command.put("obj", 3), target=NodeID(2, 1))
    dep.run_for(0.1)
    assert dep.replicas[NodeID(2, 1)].objects["obj"].active
    assert not dep.replicas[NodeID(1, 1)].objects["obj"].active
    assert_correct(dep)


def test_interleaved_access_resets_streak(lan9):
    dep = Deployment(lan9).start(WPaxos)
    owner = dep.new_client()
    remote = dep.new_client()
    owner.invoke(Command.put("obj", 0), target=NodeID(1, 1))
    dep.run_for(0.05)
    for i in range(4):
        remote.invoke(Command.put("obj", f"r{i}"), target=NodeID(2, 1))
        dep.run_for(0.05)
        owner.invoke(Command.put("obj", f"o{i}"), target=NodeID(1, 1))
        dep.run_for(0.05)
    # Ownership never moved: the owner's own accesses broke every streak.
    assert dep.replicas[NodeID(1, 1)].objects["obj"].active
    assert_correct(dep)


def test_immediate_steal_policy():
    cfg = Config.lan(3, 3, seed=1, steal_threshold=1)
    dep = Deployment(cfg).start(WPaxos)
    a, b = dep.new_client(), dep.new_client()
    a.invoke(Command.put("obj", 1), target=NodeID(1, 1))
    dep.run_for(0.05)
    b.invoke(Command.put("obj", 2), target=NodeID(3, 1))
    dep.run_for(0.1)
    assert dep.replicas[NodeID(3, 1)].objects["obj"].active
    assert_correct(dep)


def test_fz0_commits_inside_zone_in_wan():
    cfg = Config.wan(("VA", "OH", "CA"), 3, seed=2, fz=0)
    dep = Deployment(cfg).start(WPaxos)
    client = dep.new_client(site="VA")
    latencies = []
    client.invoke(Command.put("k", 0))
    dep.run_for(1.0)  # ownership settles at the VA leader
    for i in range(20):
        client.invoke(Command.put("k", i + 1), on_done=lambda r, l: latencies.append(l * 1e3))
        dep.run_for(0.2)
    assert latencies
    assert sum(latencies) / len(latencies) < 5  # local commit, no WAN leg
    assert_correct(dep)


def test_fz1_pays_nearest_zone():
    cfg = Config.wan(("VA", "OH", "CA"), 3, seed=2, fz=1)
    dep = Deployment(cfg).start(WPaxos)
    client = dep.new_client(site="VA")
    latencies = []
    client.invoke(Command.put("k", 0))
    dep.run_for(1.0)
    for i in range(20):
        client.invoke(Command.put("k", i + 1), on_done=lambda r, l: latencies.append(l * 1e3))
        dep.run_for(0.2)
    mean = sum(latencies) / len(latencies)
    assert 8 < mean < 25  # dominated by the VA-OH 11 ms RTT
    assert_correct(dep)


def test_object_history_survives_migration(lan9):
    dep = Deployment(lan9).start(WPaxos)
    a = dep.new_client()
    for i in range(3):
        a.invoke(Command.put("obj", f"a{i}"), target=NodeID(1, 1))
        dep.run_for(0.05)
    b = dep.new_client()
    for i in range(4):
        b.invoke(Command.put("obj", f"b{i}"), target=NodeID(2, 1))
        dep.run_for(0.05)
    dep.run_for(0.2)
    new_owner = dep.replicas[NodeID(2, 1)]
    history = new_owner.store.history("obj")
    assert history[:3] == ["a0", "a1", "a2"]
    assert len(history) == 7
    assert_correct(dep)


def test_multi_leader_beats_single_leader_throughput():
    """Figure 9: WPaxos saturates well above Paxos, but sub-linearly
    (not 3x for 3 leaders)."""
    from repro.protocols.paxos import MultiPaxos

    _dw, wp = run_protocol(
        WPaxos, Config.lan(3, 3, seed=3), WorkloadSpec(keys=1000), concurrency=128, duration=0.3
    )
    _dp, px = run_protocol(
        MultiPaxos, Config.lan(3, 3, seed=3), WorkloadSpec(keys=1000), concurrency=128, duration=0.3
    )
    ratio = wp.throughput / px.throughput
    assert 1.3 < ratio < 2.7


def test_grid_requires_rectangular_zones():
    from repro.errors import ConfigError
    from repro.core import topology as topo
    from repro.paxi.ids import grid_ids

    ids = grid_ids(2, 2)[:3] + (NodeID(3, 1),)
    cfg = Config(topology=topo.lan(4), node_ids=ids)
    with pytest.raises(ConfigError):
        Deployment(cfg).start(WPaxos)


def test_losing_steal_candidacy_reroutes_buffered_requests():
    """Regression: when two leaders race to steal the same object, the
    loser must forward its buffered client requests to the winner instead
    of stranding them (clients would otherwise hang forever)."""
    cfg = Config.wan(("VA", "OH", "CA"), 3, seed=11, steal_threshold=1)
    dep = Deployment(cfg).start(WPaxos)
    clients = [dep.new_client(site=s) for s in ("VA", "OH", "CA")]
    done = []
    # Fire dueling steals for the same cold object from all three regions
    # simultaneously; every request must still complete.
    for i, client in enumerate(clients):
        client.invoke(Command.put("contested", i), target=NodeID(i + 1, 1), on_done=lambda r, l: done.append(r.value))
    dep.run_for(3.0)
    assert sorted(done) == [0, 1, 2]
    owners = [z for z in (1, 2, 3) if dep.replicas[NodeID(z, 1)].objects["contested"].active]
    assert len(owners) == 1  # exactly one winner
    assert_correct(dep)


def test_correct_under_hot_key_contention(lan9):
    dep, res = run_protocol(
        WPaxos,
        lan9,
        WorkloadSpec(keys=20, conflict_ratio=0.5, write_ratio=1.0),
        concurrency=8,
        duration=0.4,
    )
    assert res.completed > 100
    dep.run_for(0.3)
    assert_correct(dep)
