"""Overload chaos suite: safety and liveness under load shedding, retry
storms, and seeded arrival bursts (the "burst" nemesis kind)."""

import pytest

from repro.bench.nemesis import Nemesis
from repro.bench.openloop import OpenLoopEngine, PoissonArrivals
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.protocols.paxos import MultiPaxos
from repro.protocols.raft import Raft
from repro.sim.server import ServiceProfile

from tests.conftest import assert_correct

#: Slowed nodes (knee ~1,900/s on 3 nodes) so overload is reachable with
#: small event counts.
SLOW = ServiceProfile(t_in=100e-6, t_out=100e-6)


def _overdrive(dep, rate, seed_burst=None, duration=0.8, **engine_kwargs):
    engine = OpenLoopEngine(
        dep, WorkloadSpec(keys=20), PoissonArrivals(rate), sites=["LAN"], **engine_kwargs
    )
    if seed_burst is not None:
        Nemesis(
            seed=seed_burst, kinds=("burst",), events=2, horizon=0.5,
            burst_min=2.0, burst_max=3.0,
        ).unleash(dep, at=0.3)
    return engine.run(duration=duration, warmup=0.1, settle=0.2)


def test_shedding_cluster_stays_linearizable_at_2x_knee():
    """Rejected != lost: overdriving an admission-controlled cluster to 2x
    its knee sheds thousands of requests, and every checker still passes."""
    dep = Deployment(
        Config.lan(1, 3, seed=21, profile=SLOW, queue_limit=16)
    ).start(MultiPaxos)
    result = _overdrive(dep, rate=4000.0, request_timeout=0.1)
    assert result.rejected > 0
    assert result.completed > 0
    assert_correct(dep)


def test_shedding_plus_burst_nemesis_stays_linearizable():
    """Admission control + a seeded arrival burst + patience timeouts: the
    full overload defense stack under chaos, still zero anomalies."""
    dep = Deployment(
        Config.lan(1, 3, seed=22, profile=SLOW, queue_limit=16)
    ).start(MultiPaxos)
    result = _overdrive(dep, rate=2500.0, seed_burst=5, request_timeout=0.1)
    assert result.offered > 0
    assert_correct(dep)


def test_drop_oldest_policy_stays_linearizable():
    dep = Deployment(
        Config.lan(1, 3, seed=23, profile=SLOW, queue_limit=16,
                   shed_policy="drop_oldest")
    ).start(MultiPaxos)
    result = _overdrive(dep, rate=4000.0, request_timeout=0.1)
    assert result.rejected > 0
    assert_correct(dep)


def test_deadline_policy_stays_linearizable():
    dep = Deployment(
        Config.lan(1, 3, seed=24, profile=SLOW, queue_limit=64,
                   shed_policy="deadline")
    ).start(MultiPaxos)
    result = _overdrive(dep, rate=4000.0, request_timeout=0.05)
    assert result.rejected > 0, "10s+ of backlog against 50ms deadlines"
    assert_correct(dep)


def test_defended_clients_with_retries_stay_linearizable():
    """Clients that DO retry (budgeted, capped) against a shedding cluster:
    retransmissions + rejections together must not corrupt the history."""
    dep = Deployment(
        Config.lan(1, 3, seed=25, profile=SLOW, queue_limit=16)
    ).start(MultiPaxos)
    result = _overdrive(
        dep,
        rate=3000.0,
        retry_timeout=0.05,
        max_attempts=3,
        retry_budget=20.0,
        request_timeout=0.2,
    )
    assert result.offered > 0
    assert_correct(dep)


@pytest.mark.slow
def test_soak_burst_composes_with_outage_chaos():
    """The burst kind rides along a full chaos schedule (crashes, drops,
    partitions) with quorum preservation: liveness degrades, safety never."""
    for seed in (31, 32):
        dep = Deployment(
            Config.lan(3, 3, seed=seed, profile=SLOW, queue_limit=32,
                       election_timeout=0.08)
        ).start(Raft)
        engine = OpenLoopEngine(
            dep,
            WorkloadSpec(keys=15),
            PoissonArrivals(1500.0),
            request_timeout=0.3,
            retry_timeout=0.2,
            max_attempts=2,
        )
        nemesis = Nemesis(
            seed=seed,
            horizon=0.8,
            events=5,
            kinds=("crash", "drop", "partition", "burst"),
            max_partition_size=3,
        )
        events = nemesis.unleash(dep, at=0.3)
        assert events
        engine.run(duration=1.2, warmup=0.0, settle=0.05)
        dep.run_for(2.0)
        assert_correct(dep)
