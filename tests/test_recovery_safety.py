"""Recovery safety: reboot/wipe fault injection under the paper checkers.

Every scenario here ends in :func:`assert_correct` — linearizability over
the client history plus cross-replica consensus — so a recovery bug that
forgets a promise, re-executes a command, or diverges a log fails loudly.

Two checker-backed claims from the crash-recovery design:

- **reboot**: a durable node replays its WAL and rejoins with every
  promise/accept (Paxos) or term/vote/entry (Raft) it had made, so
  in-flight commits that counted it keep their quorum;
- **wipe**: a node that lost its disk rejoins as a *learner* — it is
  state-transferred (snapshot + log fill) and abstains from promises and
  votes until caught up, so it can never help elect a leader that misses
  committed entries.
"""

import os

import pytest

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.nemesis import Nemesis
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.protocols.fpaxos import FPaxos
from repro.protocols.paxos import MultiPaxos
from repro.protocols.raft import Raft

from tests.conftest import assert_correct

PROTOCOLS = {"paxos": MultiPaxos, "fpaxos": FPaxos, "raft": Raft}
LEADER = NodeID(1, 1)  # initial MultiPaxos/FPaxos leader; Raft elects


def durable_lan(seed, **overrides):
    params = dict(
        durability="fsync",
        snapshot_interval=25,
        election_timeout=0.15,
        catchup_snapshot_gap=16,
    )
    params.update(overrides)
    return Config.lan(3, 3, seed=seed, **params)


def drive(dep, seed_offset=0, duration=2.5, concurrency=4):
    bench = ClosedLoopBenchmark(
        dep, WorkloadSpec(keys=25), concurrency=concurrency, retry_timeout=0.4
    )
    result = bench.run(duration=duration, warmup=0.0, settle=0.05)
    dep.run_for(2.0)
    return result


class TestInMemoryOptIn:
    """Durability is strictly opt-in: default configs never touch a disk."""

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_default_config_allocates_no_disk(self, name):
        dep = Deployment(Config.lan(3, 3, seed=1)).start(PROTOCOLS[name])
        drive(dep, duration=0.3)
        for replica in dep.replicas.values():
            assert replica.disk is None
            assert replica._wal_writer is None
        assert_correct(dep)

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_durable_config_writes_a_wal(self, name):
        dep = Deployment(durable_lan(seed=2)).start(PROTOCOLS[name])
        drive(dep, duration=0.5)
        fsyncs = sum(dep.disk_for(n).fsyncs for n in dep.config.node_ids)
        assert fsyncs > 0
        assert_correct(dep)


class TestLeaderRebootMidCommit:
    """The leader power-cycles while commits are in flight: it must replay
    its WAL, keep every slot it had accepted, and the system must make
    progress again after the outage."""

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_reboot_recovers_from_wal(self, name):
        dep = Deployment(durable_lan(seed=31)).start(PROTOCOLS[name])
        dep.reboot(LEADER, downtime=0.1, at=0.8)
        result = drive(dep)
        assert result.completed > 50  # progress resumed after the outage
        assert_correct(dep)
        replica = dep.replicas[LEADER]
        assert not replica.recovering
        # the WAL actually fed recovery: the disk survived the reboot
        assert dep.disk_for(LEADER).wipes == 0

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_double_reboot(self, name):
        dep = Deployment(durable_lan(seed=32)).start(PROTOCOLS[name])
        dep.reboot(LEADER, downtime=0.1, at=0.6)
        dep.reboot(LEADER, downtime=0.1, at=1.6)
        result = drive(dep)
        assert result.completed > 50
        assert_correct(dep)


class TestFollowerWipeStateTransfer:
    """A follower loses its disk: it must rejoin as a learner, receive a
    snapshot + log fill, and converge to the same state machine."""

    FOLLOWER = NodeID(3, 3)

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_wipe_rejoins_via_state_transfer(self, name):
        dep = Deployment(durable_lan(seed=41)).start(PROTOCOLS[name])
        dep.wipe(self.FOLLOWER, downtime=0.1, at=0.8)
        result = drive(dep)
        assert result.completed > 50
        assert_correct(dep)
        wiped = dep.replicas[self.FOLLOWER]
        assert not wiped.recovering  # caught up before the run ended
        assert dep.disk_for(self.FOLLOWER).wipes == 1
        # converged: the wiped node's applied state is a prefix-consistent
        # copy of the leader's (assert_correct already proved log agreement;
        # this checks the state transfer actually moved data)
        donor = dep.replicas[LEADER]
        for key, history in wiped.store.dump().items():
            assert donor.store.dump().get(key, [])[: len(history)] == history

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_wiped_leader_steps_aside_and_cluster_recovers(self, name):
        dep = Deployment(durable_lan(seed=42)).start(PROTOCOLS[name])
        dep.wipe(LEADER, downtime=0.1, at=0.8)
        result = drive(dep)
        assert result.completed > 50
        assert_correct(dep)
        assert not dep.replicas[LEADER].recovering

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_reboot_without_disk_degrades_to_wipe_semantics(self, name):
        """Rebooting an in-memory node loses everything; the learner-mode
        rejoin must still hold without any durable state to replay."""
        cfg = Config.lan(
            3, 3, seed=43, election_timeout=0.15, catchup_snapshot_gap=16
        )
        dep = Deployment(cfg).start(PROTOCOLS[name])
        dep.reboot(self.FOLLOWER, downtime=0.1, at=0.8)
        result = drive(dep)
        assert result.completed > 50
        assert_correct(dep)


class TestGroupCommitRecovery:
    """Group-commit mode loses in-flight (unsynced) records on reboot —
    the protocols must only have acked what the WAL actually covers."""

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_reboot_under_group_commit(self, name):
        dep = Deployment(durable_lan(seed=51, durability="group")).start(
            PROTOCOLS[name]
        )
        dep.reboot(LEADER, downtime=0.1, at=0.8)
        dep.wipe(NodeID(2, 2), downtime=0.1, at=1.4)
        result = drive(dep)
        assert result.completed > 50
        assert_correct(dep)


# The CI chaos job shards extra seeds across jobs via CHAOS_SEEDS, and
# points CHAOS_ARTIFACTS at a directory where every applied schedule is
# recorded so a failing draw can be replayed from the uploaded artifact.
SOAK_SEEDS = (
    [int(s) for s in os.environ["CHAOS_SEEDS"].split(",") if s.strip()]
    if os.environ.get("CHAOS_SEEDS")
    else [7, 19, 101]
)


def record_schedule(label, seed, events):
    directory = os.environ.get("CHAOS_ARTIFACTS")
    if not directory:
        return
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, f"schedule-{label}-seed{seed}.txt"), "w") as f:
        f.write(f"# replay: Nemesis(seed={seed}) over Config.lan(3, 3, seed={seed})\n")
        for event in events:
            f.write(str(event) + "\n")


@pytest.mark.slow
class TestRecoveryChaos:
    """Jepsen-style soak: seeded Nemesis schedules drawing from the full
    fault matrix (crash, reboot, wipe, partitions, link faults) with the
    quorum-preservation guard on, across the protocols with a recovery
    story.  Any failing seed replays exactly via Nemesis(seed=...)."""

    KINDS = ("crash", "reboot", "wipe", "drop", "slow", "flaky", "partition")

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    @pytest.mark.parametrize("seed", SOAK_SEEDS)
    def test_survives_full_fault_matrix(self, name, seed):
        cfg = durable_lan(seed=seed)
        dep = Deployment(cfg).start(PROTOCOLS[name])
        nemesis = Nemesis(
            seed=seed, horizon=1.2, events=6, kinds=self.KINDS, max_partition_size=3
        )
        events = nemesis.unleash(dep, at=0.1)
        record_schedule(name, seed, events)
        assert events
        bench = ClosedLoopBenchmark(
            dep, WorkloadSpec(keys=15), concurrency=4, retry_timeout=0.4
        )
        bench.run(duration=1.8, warmup=0.0, settle=0.05)
        dep.run_for(3.0)
        assert_correct(dep)

    @pytest.mark.parametrize("seed", [13, 29])
    def test_group_commit_chaos(self, seed):
        cfg = durable_lan(seed=seed, durability="group")
        dep = Deployment(cfg).start(MultiPaxos)
        events = Nemesis(
            seed=seed, horizon=1.2, events=6, kinds=self.KINDS, max_partition_size=3
        ).unleash(dep, at=0.1)
        record_schedule("paxos-group", seed, events)
        bench = ClosedLoopBenchmark(
            dep, WorkloadSpec(keys=15), concurrency=4, retry_timeout=0.4
        )
        bench.run(duration=1.8, warmup=0.0, settle=0.05)
        dep.run_for(3.0)
        assert_correct(dep)
