"""Unit tests for the multi-version store and history recording."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.paxi.history import HistoryRecorder, Operation
from repro.paxi.kvstore import MultiVersionStore
from repro.paxi.message import Command


class TestStore:
    def test_read_missing_key_returns_none(self):
        store = MultiVersionStore()
        assert store.execute(Command.get("nope")) is None

    def test_write_then_read(self):
        store = MultiVersionStore()
        assert store.execute(Command.put("k", "v1")) == "v1"
        assert store.execute(Command.get("k")) == "v1"

    def test_versions_accumulate(self):
        store = MultiVersionStore()
        for i in range(3):
            store.execute(Command.put("k", f"v{i}"))
        assert store.version("k") == 3
        assert store.history("k") == ["v0", "v1", "v2"]

    def test_reads_do_not_create_versions(self):
        store = MultiVersionStore()
        store.execute(Command.get("k"))
        assert store.version("k") == 0
        assert len(store) == 0

    def test_execution_counter(self):
        store = MultiVersionStore()
        store.execute(Command.get("a"))
        store.execute(Command.put("a", 1))
        assert store.executions == 2

    def test_peek_read_does_not_count(self):
        store = MultiVersionStore()
        store.read("a")
        assert store.executions == 0

    def test_keys(self):
        store = MultiVersionStore()
        store.execute(Command.put("a", 1))
        store.execute(Command.put("b", 2))
        assert sorted(store.keys()) == ["a", "b"]

    def test_adopt_extends(self):
        store = MultiVersionStore()
        store.execute(Command.put("k", "v1"))
        store.adopt("k", ["v1", "v2", "v3"])
        assert store.history("k") == ["v1", "v2", "v3"]
        assert store.version("k") == 3

    def test_adopt_ignores_stale_shorter_chain(self):
        store = MultiVersionStore()
        store.adopt("k", ["a", "b"])
        store.adopt("k", ["a"])
        assert store.history("k") == ["a", "b"]


class TestOperation:
    def test_latency(self):
        op = Operation("c", "GET", "k", None, 1, invoked_at=1.0, returned_at=1.5)
        assert op.latency == pytest.approx(0.5)
        assert op.is_read

    def test_time_travel_rejected(self):
        with pytest.raises(ValueError):
            Operation("c", "GET", "k", None, 1, invoked_at=2.0, returned_at=1.0)


class TestRecorder:
    def test_begin_complete_roundtrip(self):
        rec = HistoryRecorder()
        token = rec.begin("c1", "PUT", "k", "v", 1.0)
        assert rec.in_flight == 1
        op = rec.complete(token, "v", 2.0)
        assert rec.in_flight == 0
        assert len(rec) == 1
        assert op.latency == pytest.approx(1.0)

    def test_snapshot_includes_pending_writes_with_open_interval(self):
        rec = HistoryRecorder()
        rec.begin("c1", "PUT", "k", "v", 1.0)
        snap = rec.snapshot()
        assert len(snap) == 1
        assert snap[0].returned_at == math.inf

    def test_snapshot_omits_pending_reads(self):
        rec = HistoryRecorder()
        rec.begin("c1", "GET", "k", None, 1.0)
        assert rec.snapshot() == []

    def test_per_key_sorted_by_invocation(self):
        rec = HistoryRecorder()
        rec.record(Operation("c", "PUT", "k", 2, 2, invoked_at=5.0, returned_at=6.0))
        rec.record(Operation("c", "PUT", "k", 1, 1, invoked_at=1.0, returned_at=2.0))
        rec.record(Operation("c", "PUT", "j", 3, 3, invoked_at=0.0, returned_at=1.0))
        grouped = rec.per_key()
        assert [op.value for op in grouped["k"]] == [1, 2]
        assert len(grouped["j"]) == 1

    def test_latencies(self):
        rec = HistoryRecorder()
        rec.record(Operation("c", "GET", "k", None, 1, invoked_at=0.0, returned_at=0.25))
        assert rec.latencies() == [0.25]


@given(st.lists(st.integers(), min_size=1, max_size=30))
def test_store_history_equals_writes_in_order(values):
    store = MultiVersionStore()
    for v in values:
        store.execute(Command.put("k", v))
    assert store.history("k") == values
    assert store.read("k") == values[-1]
