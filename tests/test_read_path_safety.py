"""Read-path safety: the three read modes under seeded Nemesis chaos.

The read optimizations (docs/READS.md) only earn their keep if they stay
correct when the cluster misbehaves.  Every scenario here drives a mixed
read/write workload with ``read_mode`` set, injects a seeded fault
schedule — including the two lease-targeted kinds, ``skew`` (clock steps
within the configured ``max_clock_skew`` envelope) and
``lease_expiry_during_partition`` (a node isolated for longer than the
lease, the classic stale-read window) — and then asks the checkers:

- **lease** and **quorum** reads must produce *zero* linearizability
  violations, under any schedule, on every protocol;
- **local** reads are allowed to be stale but only *boundedly* so — the
  only acceptable anomalies are stale reads, within the staleness budget
  of the fault schedule, and never dirty or future reads.

The slow soak shards across CI like ``test_recovery_safety.py``: extra
seeds via ``CHAOS_SEEDS``, applied schedules recorded to
``CHAOS_ARTIFACTS`` so any failing draw replays exactly.
"""

import os

import pytest

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.nemesis import Nemesis
from repro.bench.workload import WorkloadSpec
from repro.checkers.consensus import check_deployment
from repro.checkers.linearizability import check_history
from repro.checkers.staleness import check_bounded_staleness
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.session import SessionOptions
from repro.protocols.fpaxos import FPaxos
from repro.protocols.paxos import MultiPaxos
from repro.protocols.raft import Raft

from tests.conftest import assert_correct

PROTOCOLS = {"paxos": MultiPaxos, "fpaxos": FPaxos, "raft": Raft}
LINEARIZABLE_MODES = ("lease", "quorum")

LEASE_DURATION = 0.3
MAX_CLOCK_SKEW = 0.01


def lease_lan(seed, **overrides):
    """A 9-node durable LAN with leases on: durability matters because the
    chaos schedules restart nodes, which must forget nothing they promised
    — and must assume an unknown outstanding grant on reboot."""
    params = dict(
        lease_duration=LEASE_DURATION,
        max_clock_skew=MAX_CLOCK_SKEW,
        durability="fsync",
        snapshot_interval=25,
        election_timeout=0.15,
        catchup_snapshot_gap=16,
    )
    params.update(overrides)
    return Config.lan(3, 3, seed=seed, **params)


def drive(dep, read_mode, duration=1.8, concurrency=4, write_ratio=0.5):
    spec = WorkloadSpec(keys=15, write_ratio=write_ratio, read_mode=read_mode)
    bench = ClosedLoopBenchmark(dep, spec, concurrency=concurrency, retry_timeout=0.4)
    result = bench.run(duration=duration, warmup=0.0, settle=0.05)
    dep.run_for(3.0)
    return result


# The CI chaos job shards extra seeds across jobs via CHAOS_SEEDS, and
# points CHAOS_ARTIFACTS at a directory where every applied schedule is
# recorded so a failing draw can be replayed from the uploaded artifact.
SOAK_SEEDS = (
    [int(s) for s in os.environ["CHAOS_SEEDS"].split(",") if s.strip()]
    if os.environ.get("CHAOS_SEEDS")
    else [7, 19, 101]
)


def record_schedule(label, seed, events):
    directory = os.environ.get("CHAOS_ARTIFACTS")
    if not directory:
        return
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, f"schedule-{label}-seed{seed}.txt"), "w") as f:
        f.write(
            f"# replay: Nemesis(seed={seed}) over lease_lan(seed={seed}) "
            f"(Config.lan(3, 3) + leases)\n"
        )
        for event in events:
            f.write(str(event) + "\n")


def read_nemesis(seed, kinds):
    """A Nemesis tuned to the lease deployment: isolation windows outlast
    ``LEASE_DURATION`` and clock steps stay inside the configured skew
    envelope (the lease arithmetic must absorb them; beyond-envelope skew
    is out of contract and exercised by the broken-lease checker tests)."""
    return Nemesis(
        seed=seed,
        horizon=1.2,
        events=6,
        kinds=kinds,
        max_partition_size=3,
        lease_duration=LEASE_DURATION,
        skew_magnitude=MAX_CLOCK_SKEW,
    )


class TestReadModesServe:
    """Fault-free smoke: every protocol serves every mode and stamps
    ``read_mode`` on the result."""

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_all_modes_return_committed_value(self, name):
        dep = Deployment(lease_lan(seed=5)).start(PROTOCOLS[name])
        dep.run_for(0.5)  # Raft: first election + fsync before a no-retry put
        session = dep.new_session()
        assert session.put("k", "v0").ok
        dep.run_for(0.3)  # leases granted, commit applied everywhere
        for mode in (None, "lease", "quorum", "local"):
            result = session.get("k", opts=SessionOptions(consistency=mode))
            assert result.ok and result.value == "v0", (name, mode)
            assert result.read_mode == mode
        assert_correct(dep)


class TestLeaseFaultsTargeted:
    """Deterministic single-fault scenarios for the two new Nemesis kinds,
    fast enough for the tier-1 loop."""

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_lease_expiry_during_partition_is_linearizable(self, name):
        dep = Deployment(lease_lan(seed=31)).start(PROTOCOLS[name])
        events = read_nemesis(
            seed=31, kinds=("lease_expiry_during_partition",)
        ).unleash(dep, at=0.1)
        record_schedule(f"{name}-lease-expiry", 31, events)
        assert any(e.kind == "lease_expiry_during_partition" for e in events)
        assert all(e.duration > LEASE_DURATION for e in events)
        drive(dep, read_mode="lease")
        assert_correct(dep)

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_skew_within_envelope_is_linearizable(self, name):
        dep = Deployment(lease_lan(seed=37)).start(PROTOCOLS[name])
        events = read_nemesis(seed=37, kinds=("skew",)).unleash(dep, at=0.1)
        record_schedule(f"{name}-skew", 37, events)
        assert any(e.kind == "skew" for e in events)
        assert all(abs(e.delta) <= MAX_CLOCK_SKEW for e in events)
        drive(dep, read_mode="lease")
        assert_correct(dep)


@pytest.mark.slow
class TestReadPathChaos:
    """Jepsen-style soak over the read paths: the full fault matrix plus
    the lease-targeted kinds, quorum preservation on, across protocols ×
    read modes.  Any failing seed replays exactly via Nemesis(seed=...)."""

    KINDS = (
        "crash",
        "reboot",
        "drop",
        "slow",
        "flaky",
        "partition",
        "skew",
        "lease_expiry_during_partition",
    )

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    @pytest.mark.parametrize("mode", LINEARIZABLE_MODES)
    @pytest.mark.parametrize("seed", SOAK_SEEDS)
    def test_linearizable_modes_survive_fault_matrix(self, name, mode, seed):
        dep = Deployment(lease_lan(seed=seed)).start(PROTOCOLS[name])
        events = read_nemesis(seed=seed, kinds=self.KINDS).unleash(dep, at=0.1)
        record_schedule(f"{name}-{mode}", seed, events)
        assert events
        drive(dep, read_mode=mode)
        assert_correct(dep)

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    @pytest.mark.parametrize("seed", SOAK_SEEDS)
    def test_local_reads_stay_within_staleness_bound(self, name, seed):
        """Local reads under chaos: stale is allowed, *unboundedly* stale
        is not — and the anomalies must be stale reads only (a dirty or
        future read would mean corruption, not staleness)."""
        dep = Deployment(lease_lan(seed=seed)).start(PROTOCOLS[name])
        events = read_nemesis(seed=seed, kinds=self.KINDS).unleash(dep, at=0.1)
        record_schedule(f"{name}-local", seed, events)
        drive(dep, read_mode="local")
        ops = dep.history.snapshot()
        lin = check_history(ops)
        assert {a.kind for a in lin.anomalies} <= {"stale-read"}
        # Staleness budget: a read can at worst observe state from before
        # the longest isolation window in the schedule (plus scheduling
        # slack) — any staleness beyond that means the replica never
        # converged, which is a replication bug, not a relaxed read.
        budget = max((e.duration for e in events), default=0.0) + 1.0
        relaxed = check_bounded_staleness(ops, delta=budget)
        assert relaxed.ok, [str(v) for v in relaxed.staleness_violations[:3]]
        assert check_deployment(dep).ok
