"""Property-based safety tests: randomized fault schedules never violate
linearizability or consensus.

Hypothesis drives seeds, fault types, fault windows, and workload mixes;
whatever it picks, the checkers must pass.  Example counts are kept small
because each example is a full (short) simulation.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.protocols.epaxos import EPaxos
from repro.protocols.paxos import MultiPaxos
from repro.protocols.wpaxos import WPaxos

from tests.conftest import assert_correct

pytestmark = pytest.mark.slow

node_ids = st.tuples(st.integers(1, 3), st.integers(1, 3)).map(lambda t: NodeID(*t))

fault_strategy = st.tuples(
    st.sampled_from(["crash", "drop", "flaky", "slow"]),
    node_ids,
    node_ids,
    st.floats(min_value=0.0, max_value=0.3),  # start
    st.floats(min_value=0.05, max_value=0.3),  # duration
)

slow_settings = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _inject(deployment, fault):
    kind, a, b, start, duration = fault
    if kind == "crash":
        deployment.crash(a, duration, at=start)
    elif kind == "drop":
        deployment.drop(a, b, duration, at=start)
    elif kind == "flaky":
        deployment.flaky(a, b, duration, probability=0.5, at=start)
    else:
        deployment.slow(a, b, duration, at=start)


def _run_safely(factory, seed, faults, write_ratio, conflict):
    cfg = Config.lan(3, 3, seed=seed)
    deployment = Deployment(cfg).start(factory)
    for fault in faults:
        _inject(deployment, fault)
    spec = WorkloadSpec(keys=10, write_ratio=write_ratio, conflict_ratio=conflict)
    bench = ClosedLoopBenchmark(deployment, spec, concurrency=4, retry_timeout=0.4)
    bench.run(duration=0.4, warmup=0.0, settle=0.05)
    deployment.run_for(1.0)  # drain
    assert_correct(deployment)


@slow_settings
@given(
    seed=st.integers(0, 10_000),
    faults=st.lists(fault_strategy, max_size=3),
    write_ratio=st.floats(min_value=0.1, max_value=1.0),
)
def test_paxos_safe_under_random_faults(seed, faults, write_ratio):
    # Never crash the leader itself: failover is exercised elsewhere, and
    # with elections disabled a dead leader just halts (safe but trivial).
    faults = [f for f in faults if not (f[0] == "crash" and f[1] == NodeID(1, 1))]
    _run_safely(MultiPaxos, seed, faults, write_ratio, conflict=0.0)


@slow_settings
@given(
    seed=st.integers(0, 10_000),
    faults=st.lists(fault_strategy, max_size=2),
    conflict=st.floats(min_value=0.0, max_value=1.0),
)
def test_epaxos_safe_under_random_faults(seed, faults, conflict):
    # EPaxos has no recovery protocol (the paper exercises the failure-free
    # path), so restrict to non-crash faults with drops between followers.
    faults = [f for f in faults if f[0] in ("slow",)]
    _run_safely(EPaxos, seed, faults, write_ratio=0.5, conflict=conflict)


@slow_settings
@given(
    seed=st.integers(0, 10_000),
    faults=st.lists(fault_strategy, max_size=2),
    conflict=st.floats(min_value=0.0, max_value=0.8),
)
def test_wpaxos_safe_under_random_faults(seed, faults, conflict):
    # Crashing a zone leader stalls its objects (no failover by design);
    # restrict crashes to non-leader nodes.
    faults = [f for f in faults if not (f[0] == "crash" and f[1].node == 1)]
    _run_safely(WPaxos, seed, faults, write_ratio=0.5, conflict=conflict)
