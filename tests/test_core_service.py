"""Unit tests for service-time accounting (Table 2)."""

import pytest

from repro.core.service import (
    RoundWork,
    ServiceParams,
    max_throughput,
    paxos_follower_work,
    paxos_leader_work,
    paxos_service_time,
)
from repro.errors import ModelError


class TestServiceParams:
    def test_nic_time(self):
        p = ServiceParams(message_bytes=125, bandwidth_bps=1000.0)
        assert p.nic_time == pytest.approx(0.125)

    def test_scaled_penalizes_cpu_and_size(self):
        p = ServiceParams(t_in=1e-6, t_out=2e-6, message_bytes=100)
        q = p.scaled(cpu_weight=1.3, size_factor=2.0)
        assert q.t_in == pytest.approx(1.3e-6)
        assert q.t_out == pytest.approx(2.6e-6)
        assert q.message_bytes == pytest.approx(200)
        assert q.bandwidth_bps == p.bandwidth_bps

    def test_validation(self):
        with pytest.raises(ModelError):
            ServiceParams(t_in=-1e-6)
        with pytest.raises(ModelError):
            ServiceParams(bandwidth_bps=0)


class TestRoundWork:
    def test_service_time_formula(self):
        p = ServiceParams(t_in=10e-6, t_out=10e-6, message_bytes=100, bandwidth_bps=1e9 / 8)
        work = RoundWork(incoming=9, serializations=2, nic_messages=18)
        # ts = 2*to + 9*ti + 18*m/b
        expected = 2 * 10e-6 + 9 * 10e-6 + 18 * (100 / (1e9 / 8))
        assert work.service_time(p) == pytest.approx(expected)

    def test_addition_and_scaling(self):
        a = RoundWork(1, 2, 3)
        b = RoundWork(10, 20, 30)
        total = a + b
        assert (total.incoming, total.serializations, total.nic_messages) == (11, 22, 33)
        half = b.scale(0.5)
        assert (half.incoming, half.serializations, half.nic_messages) == (5, 10, 15)


class TestPaxosAccounting:
    def test_table2_formula(self):
        """ts = 2*to + N*ti + 2N*m/b, verbatim from Table 2."""
        p = ServiceParams()
        n = 9
        expected = 2 * p.t_out + n * p.t_in + 2 * n * p.nic_time
        assert paxos_service_time(n, p) == pytest.approx(expected)

    def test_leader_vs_follower_message_counts(self):
        """Paper section 5.2: 11 messages at the leader vs 2 at a follower
        for a 9-node cluster."""
        leader = paxos_leader_work(9)
        follower = paxos_follower_work()
        # Leader: N incoming + 1 broadcast + 1 reply = N + 2 logical messages.
        assert leader.incoming + leader.serializations == 11
        assert follower.incoming + follower.serializations == 2

    def test_calibrated_max_throughput(self):
        """Default parameters put 9-node Paxos at ~8,000 rounds/s (Fig. 7)."""
        mu = max_throughput(paxos_service_time(9))
        assert mu == pytest.approx(8000, rel=0.05)

    def test_service_time_grows_with_n(self):
        times = [paxos_service_time(n) for n in (3, 5, 9, 15)]
        assert times == sorted(times)

    def test_invalid_n(self):
        with pytest.raises(ModelError):
            paxos_leader_work(0)

    def test_max_throughput_validation(self):
        with pytest.raises(ModelError):
            max_throughput(0.0)
