"""Cross-protocol correctness matrix.

Every protocol must pass both paper checkers — linearizability and
consensus common-prefix — under every workload/deployment combination,
including fault injection.  This is the Paxi framework's core promise:
one playground, same checks for everyone.
"""

import pytest

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.protocols.epaxos import EPaxos
from repro.protocols.fpaxos import FPaxos
from repro.protocols.mencius import Mencius
from repro.protocols.paxos import MultiPaxos
from repro.protocols.raft import Raft
from repro.protocols.vpaxos import VPaxos
from repro.protocols.wankeeper import WanKeeper
from repro.protocols.wpaxos import WPaxos

from tests.conftest import assert_correct

pytestmark = pytest.mark.slow

ALL_PROTOCOLS = [MultiPaxos, FPaxos, Raft, EPaxos, WPaxos, WanKeeper, VPaxos, Mencius]

WORKLOADS = {
    "uniform": WorkloadSpec(keys=40),
    "hot-key": WorkloadSpec(keys=40, conflict_ratio=0.8),
    "write-only": WorkloadSpec(keys=10, write_ratio=1.0),
    "read-heavy": WorkloadSpec(keys=40, write_ratio=0.1),
    "zipfian": WorkloadSpec(keys=40, distribution="zipfian"),
}


@pytest.mark.parametrize("factory", ALL_PROTOCOLS, ids=lambda f: f.__name__)
@pytest.mark.parametrize("workload", sorted(WORKLOADS), ids=str)
def test_lan_correctness(factory, workload):
    cfg = Config.lan(3, 3, seed=hash(workload) % 1000)
    dep = Deployment(cfg).start(factory)
    bench = ClosedLoopBenchmark(dep, WORKLOADS[workload], concurrency=6)
    result = bench.run(duration=0.25, warmup=0.02, settle=0.05)
    assert result.completed > 50, f"{factory.__name__} barely made progress"
    dep.run_for(0.3)  # drain watermarks
    assert_correct(dep)


@pytest.mark.parametrize("factory", ALL_PROTOCOLS, ids=lambda f: f.__name__)
def test_wan_correctness(factory):
    cfg = Config.wan(("VA", "OH", "CA"), 3, seed=77)
    dep = Deployment(cfg).start(factory)
    bench = ClosedLoopBenchmark(dep, WorkloadSpec(keys=30), concurrency=6)
    result = bench.run(duration=1.0, warmup=0.2, settle=0.5)
    assert result.completed > 20
    dep.run_for(0.5)
    assert_correct(dep)


@pytest.mark.parametrize("factory", ALL_PROTOCOLS, ids=lambda f: f.__name__)
def test_flaky_network_correctness(factory):
    """Random message drops between two nodes must never break safety
    (the paper's Flaky fault command)."""
    cfg = Config.lan(3, 3, seed=31)
    dep = Deployment(cfg).start(factory)
    dep.flaky(NodeID(1, 2), NodeID(2, 1), duration=0.3, probability=0.4, at=0.1)
    dep.flaky(NodeID(2, 1), NodeID(1, 2), duration=0.3, probability=0.4, at=0.1)
    bench = ClosedLoopBenchmark(dep, WorkloadSpec(keys=20), concurrency=4, retry_timeout=0.5)
    bench.run(duration=0.8, warmup=0.05, settle=0.05)
    dep.run_for(1.0)
    assert_correct(dep)


@pytest.mark.parametrize("factory", ALL_PROTOCOLS, ids=lambda f: f.__name__)
def test_follower_crash_correctness(factory):
    """Freezing one non-leader node must never break safety (Crash)."""
    cfg = Config.lan(3, 3, seed=32)
    dep = Deployment(cfg).start(factory)
    dep.crash(NodeID(3, 2), duration=0.4, at=0.1)
    bench = ClosedLoopBenchmark(dep, WorkloadSpec(keys=20), concurrency=4, retry_timeout=0.5)
    result = bench.run(duration=0.8, warmup=0.05, settle=0.05)
    assert result.completed > 100
    dep.run_for(0.8)
    assert_correct(dep)


@pytest.mark.parametrize("factory", ALL_PROTOCOLS, ids=lambda f: f.__name__)
def test_deterministic_runs(factory):
    """Same seed, same protocol, same workload -> identical histories."""

    def signature():
        cfg = Config.lan(3, 3, seed=99)
        dep = Deployment(cfg).start(factory)
        bench = ClosedLoopBenchmark(dep, WorkloadSpec(keys=10), concurrency=3)
        bench.run(duration=0.15, warmup=0.02, settle=0.05)
        return [
            (op.client, op.op, op.key, op.value, op.output, op.invoked_at, op.returned_at)
            for op in dep.history.operations
        ]

    assert signature() == signature()
