"""Region-failure tolerance: the fz parameter does what the paper says.

Paper section 5.3, observation (3): WPaxos with fz=1 "can tolerate entire
region failure" — its phase-2 quorum spans two zones, so losing one region
leaves every committed command recoverable and new commands committable.
With fz=0, objects owned by the failed region stall until it returns.
"""

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import Command
from repro.protocols.paxos import MultiPaxos
from repro.protocols.wpaxos import WPaxos

from tests.conftest import assert_correct

REGIONS = ("VA", "OH", "CA")


def _crash_region(deployment, zone: int, duration: float, at: float) -> None:
    for node in deployment.config.ids_in_zone(zone):
        deployment.crash(node, duration, at)


def test_wpaxos_fz1_survives_region_outage():
    """With fz=1 a VA-owned object has its quorum in VA+OH; crashing CA
    entirely must not disturb it at all."""
    cfg = Config.wan(REGIONS, 3, seed=21, fz=1)
    dep = Deployment(cfg).start(WPaxos)
    client = dep.new_client(site="VA")
    client.invoke(Command.put("k", 0))
    dep.run_for(1.0)
    _crash_region(dep, 3, duration=2.0, at=dep.now)
    done = []
    for i in range(10):
        client.invoke(Command.put("k", i + 1), on_done=lambda r, l: done.append(l * 1e3))
        dep.run_for(0.15)
    assert len(done) == 10
    assert max(done) < 30  # VA-OH quorum: ~11 ms RTT, CA's death unnoticed
    assert_correct(dep)


def test_wpaxos_fz0_stalls_on_owner_region_outage_until_thaw():
    cfg = Config.wan(REGIONS, 3, seed=22, fz=0, steal_threshold=100)
    dep = Deployment(cfg).start(WPaxos)
    va_client = dep.new_client(site="VA")
    va_client.invoke(Command.put("k", 0))
    dep.run_for(1.0)
    # The whole VA region freezes; an OH client's requests for the
    # VA-owned object forward into the void.
    _crash_region(dep, 1, duration=1.0, at=dep.now)
    oh_client = dep.new_client(site="OH")
    done = []
    oh_client.invoke(Command.put("k", "during"), on_done=lambda r, l: done.append(l * 1e3))
    dep.run_for(0.5)
    assert done == []  # stalled while the owner region is down
    dep.run_for(2.0)  # VA thaws and processes the queued request
    assert len(done) == 1
    assert_correct(dep)


def test_multipaxos_majority_survives_minority_region_outage():
    """9-node MultiPaxos with the leader in VA keeps its majority when CA
    (3 of 9 nodes) fails."""
    cfg = Config.wan(REGIONS, 3, seed=23)
    dep = Deployment(cfg).start(MultiPaxos)
    bench = ClosedLoopBenchmark(
        dep, WorkloadSpec(keys=10), concurrency=3, sites=["VA"], retry_timeout=0.5
    )
    _crash_region(dep, 3, duration=1.5, at=1.0)
    result = bench.run(duration=2.5, warmup=0.5, settle=0.5)
    assert result.completed > 100
    assert result.failed == 0
    assert_correct(dep)
