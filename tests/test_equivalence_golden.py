"""Same-seed equivalence guard (see src/repro/bench/equivalence.py).

Every scenario must reproduce its committed fingerprint bit-for-bit: the
hot-path optimizations (heap compaction, cached delay distributions,
fast-path sampling, frontier-tracked logs, ...) are only legal if they
change *nothing* about simulated outcomes.  A mismatch here means an
optimization altered behavior — fix the optimization; only regenerate the
golden file for an intentional semantic change, with a PR note.
"""

from __future__ import annotations

import pytest

from repro.bench.equivalence import load_golden, run_scenario, scenarios

SCENARIOS = scenarios()
GOLDEN = load_golden()


def test_golden_covers_every_scenario():
    assert sorted(GOLDEN) == sorted(s.name for s in SCENARIOS)


@pytest.mark.slow
@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
def test_same_seed_run_matches_golden_fingerprint(scenario):
    fresh = run_scenario(scenario)
    golden = GOLDEN[scenario.name]
    # Compare field-by-field so a mismatch names the diverging facet
    # (latency digest vs network counters vs spans) instead of dumping
    # two opaque dicts.
    assert sorted(fresh) == sorted(golden)
    for facet in golden:
        assert fresh[facet] == golden[facet], f"{scenario.name}: {facet} diverged"


def test_default_mode_read_path_is_opt_in():
    """The linearizable read path (leader leases, quorum reads — see
    docs/READS.md) must be provably opt-in: with leases unconfigured and
    no ``read_mode`` on any command, a default scenario still reproduces
    the golden fingerprint recorded before the feature existed —
    bit-identical wire traffic, spans, and latency series.  Kept out of
    the slow lane so tier-1 runs always pin it."""
    scenario = next(s for s in SCENARIOS if s.name == "paxos:memory:clean")
    fresh = run_scenario(scenario)
    golden = GOLDEN[scenario.name]
    assert sorted(fresh) == sorted(golden)
    for facet in golden:
        assert fresh[facet] == golden[facet], f"default-mode {facet} diverged"


def test_default_mode_overload_machinery_is_opt_in():
    """The overload stack (admission control, retry budgets, circuit
    breakers, the open-loop engine refactor — see docs/OVERLOAD.md) must
    be provably opt-in: with no admission fields configured and no client
    defenses armed, a default scenario still reproduces the golden
    fingerprint recorded before any of it existed — bit-identical wire
    traffic, spans, and latency series.  Kept out of the slow lane so
    tier-1 runs always pin it."""
    scenario = next(s for s in SCENARIOS if s.name == "paxos:memory:faulty")
    fresh = run_scenario(scenario)
    golden = GOLDEN[scenario.name]
    assert sorted(fresh) == sorted(golden)
    for facet in golden:
        assert fresh[facet] == golden[facet], f"default-mode {facet} diverged"


@pytest.mark.slow
def test_back_to_back_runs_are_bit_identical():
    """The guard itself must be deterministic: two fresh runs of the same
    scenario in one process produce identical fingerprints."""
    scenario = next(s for s in SCENARIOS if s.name == "paxos:durable:faulty")
    assert run_scenario(scenario) == run_scenario(scenario)
