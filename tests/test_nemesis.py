"""Tests for the nemesis fault scheduler, plus chaos soak tests."""

import pytest

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.nemesis import FaultEvent, Nemesis
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID, grid_ids
from repro.protocols.mencius import Mencius
from repro.protocols.paxos import MultiPaxos
from repro.protocols.raft import Raft

from tests.conftest import assert_correct

NODES = grid_ids(3, 3)


class TestScheduling:
    def test_same_seed_same_schedule(self):
        a = Nemesis(seed=5, events=6).schedule(NODES)
        b = Nemesis(seed=5, events=6).schedule(NODES)
        assert a == b
        assert Nemesis(seed=6, events=6).schedule(NODES) != a

    def test_schedule_sorted_by_start(self):
        events = Nemesis(seed=1, events=10).schedule(NODES)
        starts = [e.start for e in events]
        assert starts == sorted(starts)

    def test_spare_nodes_never_crashed_or_partitioned(self):
        spare = [NodeID(1, 1)]
        nemesis = Nemesis(seed=2, events=40, kinds=("crash", "partition"), spare=spare)
        for event in nemesis.schedule(NODES):
            assert event.victim != NodeID(1, 1)
            assert NodeID(1, 1) not in event.group

    def test_kind_restriction(self):
        events = Nemesis(seed=3, events=20, kinds=("flaky",)).schedule(NODES)
        assert {e.kind for e in events} == {"flaky"}
        for e in events:
            assert 0.2 <= e.probability <= 0.8

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Nemesis(kinds=("meteor",))

    def test_partition_size_bounded(self):
        events = Nemesis(seed=4, events=30, kinds=("partition",), max_partition_size=2)
        for e in events.schedule(NODES):
            assert 1 <= len(e.group) <= 2

    def test_event_str_is_replayable_description(self):
        event = FaultEvent("crash", 0.5, 0.2, victim=NodeID(1, 2))
        assert "crash" in str(event) and "1.2" in str(event)

    def test_recovery_kinds_are_opt_in(self):
        # The default draw is unchanged so historical seeds replay the
        # same schedules; reboot/wipe must be requested explicitly.
        from repro.bench.nemesis import ALL_KINDS, KINDS

        assert "reboot" not in KINDS and "wipe" not in KINDS
        assert {"reboot", "wipe"} < set(ALL_KINDS)
        events = Nemesis(seed=9, events=20, kinds=("reboot", "wipe")).schedule(NODES)
        assert {e.kind for e in events} <= {"reboot", "wipe"}
        assert all(e.victim is not None for e in events)

    @staticmethod
    def _max_simultaneous_down(events):
        outages = [
            e for e in events if e.kind in ("crash", "reboot", "wipe", "partition")
        ]
        worst = 0
        for e in outages:  # the down-set only grows at an outage start
            down = set()
            for o in outages:
                if o.start <= e.start < o.start + o.duration:
                    down |= {o.victim} if o.victim else set(o.group)
            worst = max(worst, len(down))
        return worst

    def test_preserve_quorum_caps_simultaneous_outages(self):
        kinds = ("crash", "reboot", "wipe", "partition")
        for seed in range(8):
            events = Nemesis(
                seed=seed, events=40, kinds=kinds, max_partition_size=4, horizon=0.5
            ).schedule(NODES)
            assert self._max_simultaneous_down(events) <= (len(NODES) - 1) // 2

    def test_preserve_quorum_can_be_disabled(self):
        kinds = ("crash", "reboot", "wipe")
        exceeded = False
        for seed in range(8):
            events = Nemesis(
                seed=seed, events=40, kinds=kinds, horizon=0.5, preserve_quorum=False
            ).schedule(NODES)
            if self._max_simultaneous_down(events) > (len(NODES) - 1) // 2:
                exceeded = True
        assert exceeded  # unguarded schedules do break the majority

    def test_unknown_kind_error_lists_all_valid_kinds(self):
        from repro.bench.nemesis import ALL_KINDS

        with pytest.raises(ValueError) as excinfo:
            Nemesis(kinds=("meteor", "crash"))
        message = str(excinfo.value)
        assert "meteor" in message
        for kind in ALL_KINDS:
            assert kind in message


class TestBurst:
    def test_burst_is_opt_in(self):
        # Like reboot/wipe: never drawn by default, so historical seeds
        # replay byte-identical schedules.
        from repro.bench.nemesis import ALL_KINDS, KINDS

        assert "burst" not in KINDS
        assert "burst" in ALL_KINDS

    def test_burst_schedule_deterministic_and_bounded(self):
        nemesis = Nemesis(
            seed=17, events=12, kinds=("burst",), burst_min=1.5, burst_max=4.0
        )
        events = nemesis.schedule(NODES)
        replay = Nemesis(
            seed=17, events=12, kinds=("burst",), burst_min=1.5, burst_max=4.0
        ).schedule(NODES)
        assert events == replay
        assert {e.kind for e in events} == {"burst"}
        for e in events:
            assert 1.5 <= e.multiplier <= 4.0
            assert e.duration > 0
            assert e.victim is None and not e.group  # load fault, no outage

    def test_burst_composes_with_preserve_quorum(self):
        # A surge is not an outage: it never occupies an outage slot, so a
        # quorum-preserving schedule can overlap bursts with a crash freely.
        for seed in range(6):
            events = Nemesis(
                seed=seed,
                events=30,
                kinds=("crash", "burst"),
                horizon=0.5,
                preserve_quorum=True,
            ).schedule(NODES)
            down = [e for e in events if e.kind == "crash"]
            assert TestScheduling._max_simultaneous_down(down) <= (len(NODES) - 1) // 2
            assert any(e.kind == "burst" for e in events)

    def test_burst_event_str_shows_multiplier(self):
        event = FaultEvent("burst", 0.5, 0.2, multiplier=2.5)
        assert "burst" in str(event) and "2.5" in str(event)

    def test_unleash_drives_registered_rate_controllers(self):
        class RecordingController:
            def __init__(self):
                self.calls = []

            def apply_burst(self, at, duration, multiplier):
                self.calls.append((at, duration, multiplier))

        dep = Deployment(Config.lan(1, 3, seed=3)).start(MultiPaxos)
        controller = RecordingController()
        dep.rate_controllers.append(controller)
        events = Nemesis(seed=17, events=4, kinds=("burst",)).unleash(dep, at=0.25)
        assert len(controller.calls) == len(events)
        for event, (at, duration, multiplier) in zip(events, controller.calls):
            assert at == pytest.approx(0.25 + event.start)
            assert duration == pytest.approx(event.duration)
            assert multiplier == pytest.approx(event.multiplier)


@pytest.mark.slow
class TestChaosSoak:
    """The automated Jepsen-style check: random fault schedules, safety
    must hold for every protocol with a recovery story."""

    @pytest.mark.parametrize("seed", [11, 23, 37])
    def test_raft_survives_chaos(self, seed):
        cfg = Config.lan(3, 3, seed=seed)
        dep = Deployment(cfg).start(Raft)
        bench = ClosedLoopBenchmark(dep, WorkloadSpec(keys=15), concurrency=4, retry_timeout=0.4)
        nemesis = Nemesis(seed=seed, horizon=0.8, events=4, max_partition_size=3)
        events = nemesis.unleash(dep, at=0.1)
        assert events  # something actually happened
        bench.run(duration=1.2, warmup=0.0, settle=0.05)
        dep.run_for(2.0)
        assert_correct(dep)

    @pytest.mark.parametrize("seed", [41, 53])
    def test_paxos_survives_chaos_with_elections(self, seed):
        cfg = Config.lan(3, 3, seed=seed, election_timeout=0.08)
        dep = Deployment(cfg).start(MultiPaxos)
        bench = ClosedLoopBenchmark(dep, WorkloadSpec(keys=15), concurrency=4, retry_timeout=0.4)
        Nemesis(seed=seed, horizon=0.8, events=4, max_partition_size=3).unleash(dep, at=0.1)
        bench.run(duration=1.2, warmup=0.0, settle=0.05)
        dep.run_for(2.0)
        assert_correct(dep)

    def test_mencius_survives_link_chaos(self):
        # Mencius has no crash recovery (like the paper's EPaxos setup):
        # restrict the nemesis to link faults.
        cfg = Config.lan(3, 3, seed=67)
        dep = Deployment(cfg).start(Mencius)
        bench = ClosedLoopBenchmark(dep, WorkloadSpec(keys=15), concurrency=4)
        Nemesis(seed=67, horizon=0.6, events=4, kinds=("drop", "slow", "flaky")).unleash(
            dep, at=0.1
        )
        bench.run(duration=1.0, warmup=0.0, settle=0.05)
        dep.run_for(2.0)
        assert_correct(dep)
