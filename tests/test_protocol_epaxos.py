"""Integration tests for EPaxos."""

import pytest

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import Command
from repro.protocols.epaxos import COMMITTED, EXECUTED, EPaxos

from tests.conftest import assert_correct, run_protocol


def test_single_command_commits_everywhere(lan9):
    dep = Deployment(lan9).start(EPaxos)
    client = dep.new_client()
    seen = []
    client.invoke(Command.put("x", "v"), on_done=lambda r, l: seen.append(r.value))
    dep.run_for(0.05)
    assert seen == ["v"]
    executed = [
        r for r in dep.replicas.values() if r.store.read("x") == "v"
    ]
    assert len(executed) == 9


def test_any_node_can_lead(lan9):
    dep = Deployment(lan9).start(EPaxos)
    seen = []
    for i, target in enumerate(dep.config.node_ids):
        client = dep.new_client()
        client.invoke(Command.put(f"k{i}", i), target=target, on_done=lambda r, l: seen.append(r.value))
    dep.run_for(0.1)
    assert sorted(seen) == list(range(9))


def test_fast_path_for_disjoint_keys(lan9):
    """Non-interfering commands commit on the fast path (one round)."""
    dep, res = run_protocol(EPaxos, lan9, WorkloadSpec(keys=100_000), concurrency=4)
    leaders = dep.replicas.values()
    slow = sum(
        1
        for r in leaders
        for inst in r._instances.values()
        if inst.status in (COMMITTED, EXECUTED) and inst.changed
    )
    total = sum(
        1
        for r in leaders
        for inst in r._instances.values()
        if inst.request is not None
    )
    assert total > 100
    assert slow / total < 0.05
    assert_correct(dep)


def test_hot_key_takes_slow_path(lan9):
    dep, res = run_protocol(
        EPaxos, lan9, WorkloadSpec(keys=10, conflict_ratio=1.0, write_ratio=1.0), concurrency=6
    )
    slow = sum(
        1
        for r in dep.replicas.values()
        for inst in r._instances.values()
        if inst.request is not None and inst.changed
    )
    assert slow > 20  # interference forces Accept rounds
    assert_correct(dep)


def test_conflict_hurts_latency(lan9):
    _d1, free = run_protocol(EPaxos, lan9, WorkloadSpec(keys=100_000), concurrency=6)
    _d2, hot = run_protocol(
        EPaxos,
        Config.lan(3, 3, seed=43),
        WorkloadSpec(keys=100_000, conflict_ratio=1.0),
        concurrency=6,
    )
    assert hot.latency.mean > free.latency.mean


def test_execution_order_identical_across_replicas(lan9):
    """The SCC executor must order interfering commands identically on
    every replica (the consensus checker's common-prefix property)."""
    dep, _res = run_protocol(
        EPaxos,
        lan9,
        WorkloadSpec(keys=2, write_ratio=1.0, conflict_ratio=0.5),
        concurrency=8,
        duration=0.3,
    )
    dep.run_for(0.3)  # drain commits
    histories = [r.store.history(0) for r in dep.replicas.values()]
    longest = max(histories, key=len)
    for h in histories:
        assert h == longest[: len(h)]
    assert_correct(dep)


def test_reads_see_writes(lan9):
    dep = Deployment(lan9).start(EPaxos)
    client_a = dep.new_client()
    client_b = dep.new_client()
    seen = []
    client_a.invoke(Command.put("k", "first"), target=NodeID(1, 1))
    dep.run_for(0.05)
    client_b.invoke(Command.get("k"), target=NodeID(3, 3), on_done=lambda r, l: seen.append(r.value))
    dep.run_for(0.05)
    assert seen == ["first"]


def test_fast_quorum_size_param():
    cfg = Config.lan(3, 3, seed=1, fast_quorum_size=9)
    dep = Deployment(cfg).start(EPaxos)
    assert dep.replicas[NodeID(1, 1)].fast_quorum_size == 9


def test_wan_latency_dominated_by_fast_quorum():
    """In a 3-region 9-node grid the 7-node fast quorum must reach a far
    region, so even conflict-free commands pay a WAN round trip."""
    cfg = Config.wan(("VA", "OH", "CA"), 3, seed=11)
    dep, res = run_protocol(
        EPaxos, cfg, WorkloadSpec(keys=100_000), concurrency=3, duration=0.5, settle=0.3
    )
    assert res.latency.mean > 40  # CA leg ~52-62 ms RTT
    assert_correct(dep)


def test_throughput_lowest_among_lan_protocols():
    """Figure 9: EPaxos performs worst in the Paxi LAN experiments."""
    from repro.protocols.paxos import MultiPaxos

    _de, ep = run_protocol(
        EPaxos, Config.lan(3, 3, seed=12), WorkloadSpec(keys=1000), concurrency=96, duration=0.3
    )
    _dp, paxos = run_protocol(
        MultiPaxos, Config.lan(3, 3, seed=12), WorkloadSpec(keys=1000), concurrency=96, duration=0.3
    )
    assert ep.throughput < paxos.throughput
