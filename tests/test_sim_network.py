"""Unit tests for the simulated network and fault injection."""

import pytest

from repro.core.topology import aws_wan, lan
from repro.errors import SimulationError
from repro.sim.clock import EventLoop
from repro.sim.network import FaultPlan, Network
from repro.sim.random import RandomStreams


def make_network(topology=None, seed=0):
    loop = EventLoop()
    net = Network(loop, topology if topology is not None else lan(2), RandomStreams(seed))
    return loop, net


def register_pair(net, inbox):
    net.register("a", "LAN", lambda src, msg, size: inbox.append((src, msg, net._loop.now)))
    net.register("b", "LAN", lambda src, msg, size: inbox.append((src, msg, net._loop.now)))


def test_delivery_with_local_delay():
    loop, net = make_network()
    inbox = []
    register_pair(net, inbox)
    net.transit("a", "b", "hello", 100)
    loop.run()
    assert len(inbox) == 1
    src, msg, at = inbox[0]
    assert (src, msg) == ("a", "hello")
    # One-way local delay: half the ~0.43 ms RTT, in seconds.
    assert 0.05e-3 < at < 0.6e-3


def test_unknown_destination_raises():
    _loop, net = make_network()
    net.register("a", "LAN", lambda *a: None)
    with pytest.raises(SimulationError):
        net.transit("a", "nope", "x", 1)


def test_duplicate_registration_raises():
    _loop, net = make_network()
    net.register("a", "LAN", lambda *a: None)
    with pytest.raises(SimulationError):
        net.register("a", "LAN", lambda *a: None)


def test_unknown_site_raises():
    _loop, net = make_network()
    with pytest.raises(SimulationError):
        net.register("x", "Mars", lambda *a: None)


def test_wan_delay_reflects_topology():
    topo = aws_wan(("VA", "JP"), 1)
    loop = EventLoop()
    net = Network(loop, topo, RandomStreams(1))
    arrivals = []
    net.register("va", "VA", lambda *a: arrivals.append(loop.now))
    net.register("jp", "JP", lambda *a: arrivals.append(loop.now))
    net.transit("va", "jp", "ping", 100)
    loop.run()
    # VA-JP RTT is 162 ms; one-way ~81 ms.
    assert arrivals[0] == pytest.approx(0.081, rel=0.15)


def test_drop_rule_drops_everything_in_window():
    loop, net = make_network()
    inbox = []
    register_pair(net, inbox)
    net.faults.drop("a", "b", start=0.0, duration=1.0)
    net.transit("a", "b", "lost", 10)
    loop.run_until(1.5)
    assert inbox == []
    assert net.stats.messages_dropped == 1
    # After the window the link heals (the clock is now past the window).
    net.transit("a", "b", "ok", 10)
    loop.run_until(2.0)
    assert [m for _s, m, _t in inbox] == ["ok"]


def test_drop_rule_is_directional():
    loop, net = make_network()
    inbox = []
    register_pair(net, inbox)
    net.faults.drop("a", "b", start=0.0, duration=1.0)
    net.transit("b", "a", "reverse", 10)
    loop.run_until(0.5)
    assert [m for _s, m, _t in inbox] == ["reverse"]


def test_drop_wildcard_source():
    loop, net = make_network()
    inbox = []
    register_pair(net, inbox)
    net.faults.drop(None, "b", start=0.0, duration=1.0)
    net.transit("a", "b", "x", 10)
    loop.run_until(0.5)
    assert inbox == []


def test_flaky_drops_roughly_the_requested_fraction():
    loop, net = make_network()
    inbox = []
    register_pair(net, inbox)
    net.faults.flaky("a", "b", start=0.0, duration=100.0, probability=0.5)
    for _ in range(400):
        net.transit("a", "b", "m", 10)
    loop.run_until(50.0)
    assert 120 < len(inbox) < 280  # ~200 expected


def test_flaky_probability_validated():
    plan = FaultPlan()
    with pytest.raises(SimulationError):
        plan.flaky("a", "b", 0.0, 1.0, probability=1.5)


def test_slow_adds_delay():
    loop, net = make_network()
    inbox = []
    register_pair(net, inbox)
    net.faults.slow("a", "b", start=0.0, duration=10.0, extra_delay_mean=0.5, extra_delay_sigma=0.01)
    net.transit("a", "b", "late", 10)
    loop.run_until(5.0)
    assert inbox[0][2] > 0.4


def test_partition_blocks_cross_group_traffic_both_ways():
    loop, net = make_network()
    inbox = []
    register_pair(net, inbox)
    net.faults.partition([{"a"}, {"b"}], start=0.0, duration=1.0)
    net.transit("a", "b", "x", 10)
    net.transit("b", "a", "y", 10)
    loop.run_until(0.5)
    assert inbox == []


def test_partition_allows_intra_group_traffic():
    loop = EventLoop()
    net = Network(loop, lan(3), RandomStreams(0))
    inbox = []
    for name in ("a", "b", "c"):
        net.register(name, "LAN", lambda src, msg, size: inbox.append(msg))
    net.faults.partition([{"a", "b"}, {"c"}], start=0.0, duration=1.0)
    net.transit("a", "b", "intra", 10)
    loop.run_until(0.5)
    assert inbox == ["intra"]


def test_fault_window_expires():
    loop, net = make_network()
    inbox = []
    register_pair(net, inbox)
    net.faults.drop("a", "b", start=0.0, duration=1.0)
    loop.run_until(1.5)
    net.transit("a", "b", "after", 10)
    loop.run_until(3.0)
    assert [m for _s, m, _t in inbox] == ["after"]


def test_stats_accumulate():
    loop, net = make_network()
    inbox = []
    register_pair(net, inbox)
    for _ in range(3):
        net.transit("a", "b", "m", 50)
    loop.run()
    assert net.stats.messages_sent == 3
    assert net.stats.bytes_sent == 150
    assert net.stats.per_link[("LAN", "LAN")] == 3


def test_determinism_same_seed_same_delays():
    def arrival_times(seed):
        loop, net = make_network(seed=seed)
        times = []
        net.register("a", "LAN", lambda *a: None)
        net.register("b", "LAN", lambda src, msg, size: times.append(loop.now))
        for _ in range(20):
            net.transit("a", "b", "m", 10)
        loop.run()
        return times

    assert arrival_times(7) == arrival_times(7)
    assert arrival_times(7) != arrival_times(8)
