"""Integration tests for Vertical Paxos."""

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import Command
from repro.protocols.vpaxos import VPaxos

from tests.conftest import assert_correct, run_protocol

WAN = ("VA", "OH", "CA")


def wan_cfg(seed=1, **params):
    return Config.wan(WAN, 3, seed=seed, **params)


def test_first_access_assigns_to_requesting_zone():
    dep = Deployment(wan_cfg()).start(VPaxos)
    client = dep.new_client(site="CA")
    seen = []
    client.invoke(Command.put("k", "v"), target=NodeID(3, 1), on_done=lambda r, l: seen.append(r.value))
    dep.run_for(0.5)
    assert seen == ["v"]
    assert "k" in dep.replicas[NodeID(3, 1)].owned
    master = dep.replicas[NodeID(2, 1)]
    assert master._mapping["k"].owner == 3


def test_remote_access_forwards_to_owner():
    dep = Deployment(wan_cfg()).start(VPaxos)
    ca = dep.new_client(site="CA")
    va = dep.new_client(site="VA")
    ca.invoke(Command.put("k", "ca"), target=NodeID(3, 1))
    dep.run_for(0.5)
    seen = []
    va.invoke(Command.get("k"), target=NodeID(1, 1), on_done=lambda r, l: seen.append(r.value))
    dep.run_for(0.5)
    assert seen == ["ca"]
    assert "k" in dep.replicas[NodeID(3, 1)].owned  # one access: no move yet


def test_owner_side_three_consecutive_reassignment():
    dep = Deployment(wan_cfg()).start(VPaxos)
    ca = dep.new_client(site="CA")
    va = dep.new_client(site="VA")
    ca.invoke(Command.put("k", "seed"), target=NodeID(3, 1))
    dep.run_for(0.5)
    for i in range(4):
        va.invoke(Command.put("k", f"va{i}"), target=NodeID(1, 1))
        dep.run_for(0.5)
    assert "k" in dep.replicas[NodeID(1, 1)].owned
    assert "k" not in dep.replicas[NodeID(3, 1)].owned
    master = dep.replicas[NodeID(2, 1)]
    assert master._mapping["k"].owner == 1
    # History survived the move.
    history = dep.replicas[NodeID(1, 1)].store.history("k")
    assert history[0] == "seed"
    assert_correct(dep)


def test_interleaved_owner_accesses_prevent_reassignment():
    dep = Deployment(wan_cfg()).start(VPaxos)
    ca = dep.new_client(site="CA")
    va = dep.new_client(site="VA")
    ca.invoke(Command.put("k", "seed"), target=NodeID(3, 1))
    dep.run_for(0.5)
    for i in range(4):
        va.invoke(Command.put("k", f"va{i}"), target=NodeID(1, 1))
        dep.run_for(0.3)
        ca.invoke(Command.put("k", f"ca{i}"), target=NodeID(3, 1))
        dep.run_for(0.3)
    assert "k" in dep.replicas[NodeID(3, 1)].owned
    assert_correct(dep)


def test_master_never_executes_commands():
    """Unlike WanKeeper, the VPaxos master is pure control plane."""
    dep = Deployment(wan_cfg()).start(VPaxos)
    va = dep.new_client(site="VA")
    ca = dep.new_client(site="CA")
    # Contended key, but owned by VA: the master only mediates.
    va.invoke(Command.put("k", "a"), target=NodeID(1, 1))
    dep.run_for(0.5)
    ca.invoke(Command.put("k", "b"), target=NodeID(3, 1))
    dep.run_for(0.5)
    master = dep.replicas[NodeID(2, 1)]
    assert master.store.read("k") is None  # never executed at the master zone


def test_locality_workload_balances_regions():
    """Figure 13: WPaxos and VPaxos balance objects across regions, unlike
    WanKeeper's master bias."""
    dep = Deployment(wan_cfg(seed=2)).start(VPaxos)
    spec = {
        "VA": WorkloadSpec(keys=60, distribution="normal", mu=10, sigma=4),
        "OH": WorkloadSpec(keys=60, distribution="normal", mu=30, sigma=4),
        "CA": WorkloadSpec(keys=60, distribution="normal", mu=50, sigma=4),
    }
    bench = ClosedLoopBenchmark(dep, spec, concurrency=6)
    result = bench.run(duration=2.5, warmup=1.5, settle=0.3)
    medians = [result.per_site[site].p50 for site in WAN]
    assert all(m < 5 for m in medians)  # every region ends up mostly local
    owned_counts = [len(dep.replicas[NodeID(z, 1)].owned) for z in (1, 2, 3)]
    assert all(count > 5 for count in owned_counts)
    assert_correct(dep)


def test_conflict_key_stays_with_owner_region():
    dep = Deployment(wan_cfg(seed=3)).start(VPaxos)
    oh = dep.new_client(site="OH")
    oh.invoke(Command.put(777, "prime"), target=NodeID(2, 1))
    dep.run_for(0.5)
    spec = {
        site: WorkloadSpec(keys=50, min_key=1000 * i, conflict_ratio=0.5, conflict_key=777)
        for i, site in enumerate(WAN)
    }
    bench = ClosedLoopBenchmark(dep, spec, concurrency=6)
    result = bench.run(duration=1.5, warmup=0.5, settle=0.1)
    # Interleaved cross-region access keeps the hot key at OH (owner-side
    # consecutive counting), so OH stays fast and CA pays its 52 ms RTT.
    assert result.per_site["OH"].p50 < 3
    assert result.per_site["CA"].mean > 20
    assert_correct(dep)


def test_correct_under_mixed_load():
    dep, res = run_protocol(
        VPaxos,
        Config.lan(3, 3, seed=5),
        WorkloadSpec(keys=30, conflict_ratio=0.3),
        concurrency=8,
        duration=0.4,
    )
    assert res.completed > 200
    dep.run_for(0.3)
    assert_correct(dep)
