"""Property-based test: tracing stays consistent under Nemesis schedules.

Whatever seeded fault schedule a :class:`~repro.bench.nemesis.Nemesis`
unleashes (crashes, drops, slow/flaky links, partitions), the observability
layer must keep its books straight:

- no orphan spans — everything the clients finished is accounted for, and
  the spans still open equal the requests still in flight;
- message counters never go negative and cluster-wide sent == received;
- frozen (crashed) nodes stop accruing busy-time for the freeze window;
- timestamps inside every span are monotone.

Failures replay exactly from the printed ``seed=``/``nemesis_seed=``
(hypothesis prints the falsifying example; the simulation itself is
deterministic given those two integers).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.nemesis import Nemesis
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.protocols.paxos import MultiPaxos

pytestmark = pytest.mark.slow

slow_settings = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _merged_freezes(schedule, base):
    """Per-node merged crash windows [(start, end)] in absolute time."""
    windows: dict = {}
    for event in schedule:
        if event.kind != "crash":
            continue
        start = base + event.start
        windows.setdefault(event.victim, []).append((start, start + event.duration))
    merged = {}
    for victim, spans in windows.items():
        spans.sort()
        out = [list(spans[0])]
        for start, end in spans[1:]:
            if start <= out[-1][1]:
                out[-1][1] = max(out[-1][1], end)
            else:
                out.append([start, end])
        merged[victim] = out
    return merged


@slow_settings
@given(seed=st.integers(0, 10_000), nemesis_seed=st.integers(0, 10_000))
def test_tracing_consistent_under_nemesis(seed, nemesis_seed):
    cfg = Config.lan(3, 3, seed=seed)
    deployment = Deployment(cfg).start(MultiPaxos)
    deployment.cluster.obs.tracer.enabled = True

    # Spare the fixed leader: elections are exercised elsewhere, and with a
    # crashed leader every request just times out (safe but uninformative).
    nemesis = Nemesis(
        seed=nemesis_seed, horizon=0.6, events=3, spare=(NodeID(1, 1),), max_duration=0.3
    )
    base = 0.05  # unleash offsets every event start by this base time
    schedule = nemesis.unleash(deployment, at=base)

    # Busy-time probes around every merged freeze window: sample shortly
    # after the freeze takes hold (in-flight jobs complete within their
    # sub-millisecond cost) and just before it lifts.
    samples: dict = {}
    loop = deployment.cluster.loop
    hub = deployment.cluster.obs.metrics
    for victim, windows in _merged_freezes(schedule, base).items():
        server = hub.server_of(victim)
        for start, end in windows:
            if end - start < 0.02:
                continue
            probe = (victim, start, end)

            def record(key=probe, srv=server):
                samples.setdefault(key, []).append(srv.stats.busy_seconds)

            loop.call_at(start + 0.005, record)
            loop.call_at(end - 0.001, record)

    spec = WorkloadSpec(keys=10, write_ratio=0.5)
    bench = ClosedLoopBenchmark(deployment, spec, concurrency=4, retry_timeout=0.3)
    bench.run(duration=0.5, warmup=0.0, settle=0.05)
    deployment.run_for(1.5)  # drain retries and late replies

    tracer = deployment.cluster.obs.tracer
    schedule_text = "; ".join(str(event) for event in schedule)

    # No orphan spans: completions + failures observed by the clients all
    # landed in the tracer, and whatever is still open is still in flight.
    completed = sum(client.completed for client in deployment.clients)
    failed = sum(client.failed for client in deployment.clients)
    finished_ok = sum(1 for span in tracer.finished if not span.failed)
    finished_failed = sum(1 for span in tracer.finished if span.failed)
    assert finished_ok == completed, schedule_text
    assert finished_failed == failed, schedule_text
    in_flight = sum(client.outstanding for client in deployment.clients)
    assert tracer.open_count == in_flight, schedule_text

    for span in tracer.finished:
        assert span.monotone(), f"{schedule_text}: {span.events}"
        assert span.events[0].name == "submit"
        assert span.events[-1].name in ("reply_recv", "gave_up")

    # Counters: never negative, conserved across the cluster.
    total_sent = total_received = 0
    for metrics in hub.nodes.values():
        for counter in (metrics.sent, metrics.received, metrics.dropped):
            assert all(v >= 0 for v in counter.values()), schedule_text
        assert metrics.bytes_sent >= 0 and metrics.bytes_received >= 0
        total_sent += metrics.messages_sent()
        total_received += metrics.messages_received()
    assert total_sent == total_received, schedule_text

    # Crashed nodes stop accruing busy-time inside the freeze window.
    for (victim, start, end), probes in samples.items():
        assert len(probes) == 2, schedule_text
        busy_delta = probes[1] - probes[0]
        assert busy_delta <= 1e-12, (
            f"{victim} accrued {busy_delta:.6f}s busy while frozen "
            f"[{start:.2f}, {end:.2f}] under: {schedule_text}"
        )
