"""Tests for the distilled load/capacity formulas (Equations 1-6)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.load import (
    capacity,
    load,
    load_epaxos,
    load_paxos,
    load_two_term,
    load_wpaxos,
    majority,
)
from repro.errors import ModelError


class TestPaperCorollaries:
    """Section 6.1 works the formulas at N = 9; we must match exactly."""

    def test_load_paxos_is_4(self):
        assert load_paxos(9) == pytest.approx(4.0)

    def test_load_epaxos_is_4_thirds_times_conflict(self):
        assert load_epaxos(9, 0.0) == pytest.approx(4.0 / 3.0)
        assert load_epaxos(9, 1.0) == pytest.approx(8.0 / 3.0)
        assert load_epaxos(9, 0.5) == pytest.approx(2.0)

    def test_load_wpaxos_is_4_thirds(self):
        assert load_wpaxos(9, 3) == pytest.approx(4.0 / 3.0)

    def test_wpaxos_has_smallest_load_at_n9(self):
        """The paper's conclusion: WPaxos < EPaxos (any c > 0) < Paxos."""
        assert load_wpaxos(9, 3) <= load_epaxos(9, 0.0) < load_paxos(9)
        assert load_wpaxos(9, 3) < load_epaxos(9, 0.25)


class TestFormulaAlgebra:
    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=50),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_eq2_equals_eq3(self, leaders, quorum, conflict):
        """Equation 3 is the simplified form of Equation 2."""
        assert load(leaders, quorum, conflict) == pytest.approx(
            load_two_term(leaders, quorum, conflict)
        )

    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=2, max_value=50),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_capacity_is_reciprocal(self, leaders, quorum, conflict):
        assert capacity(leaders, quorum, conflict) == pytest.approx(
            1.0 / load(leaders, quorum, conflict)
        )

    @given(st.integers(min_value=2, max_value=40), st.floats(min_value=0.0, max_value=0.99))
    def test_conflict_always_increases_load(self, quorum, conflict):
        assert load(3, quorum, conflict + 0.01) > load(3, quorum, conflict)

    @given(st.integers(min_value=1, max_value=30))
    def test_more_leaders_reduce_load_without_conflict(self, leaders):
        """The paper's protocol-level advice: increase leaders (at c = 0)."""
        q = 5
        assert load(leaders + 1, q, 0.0) <= load(leaders, q, 0.0) + 1e-12


class TestHelpers:
    @pytest.mark.parametrize("n,q", [(1, 1), (3, 2), (5, 3), (9, 5), (10, 6)])
    def test_majority(self, n, q):
        assert majority(n) == q

    def test_majority_validation(self):
        with pytest.raises(ModelError):
            majority(0)

    def test_load_validation(self):
        with pytest.raises(ModelError):
            load(0, 3)
        with pytest.raises(ModelError):
            load(1, 0)
        with pytest.raises(ModelError):
            load(1, 3, 1.5)

    def test_wpaxos_divisibility(self):
        with pytest.raises(ModelError):
            load_wpaxos(9, 4)


def test_conflict_interplay_example():
    """Section 6.3's worked warning: extra leaders help until conflicts bite.
    At N = 9, EPaxos with c = 1 still loads below Paxos (8/3 < 4), matching
    'better throughput than Paxos even with 100% conflict' in the model."""
    assert load_epaxos(9, 1.0) < load_paxos(9)
